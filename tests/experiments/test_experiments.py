"""The six declarative experiments and the shared-stage sweep."""

import dataclasses

import pytest

from repro.ensemble import EnsembleSpec
from repro.experiments import (
    ExperimentSpec,
    UnknownExperimentError,
    get_experiment,
    list_experiments,
    run_sweep,
)
from repro.model import list_patches
from repro.pipeline import root_cause_pipeline
from repro.refine import RefinementConfig


class TestRegistry:
    def test_six_experiments_registered(self):
        assert len(list_experiments()) == 6

    def test_every_patch_has_an_experiment(self):
        for patch in list_patches():
            assert get_experiment(patch).patch == patch

    def test_fma_experiment_is_whole_model(self):
        fma = get_experiment("fma")
        assert fma.fma and fma.patch is None
        assert fma.experimental_fp().fma is True
        assert fma.experimental_model() == ExperimentSpec(name="x").experimental_model()

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_experiment("wsubbug").members = 5

    def test_unknown_experiment_error(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get_experiment("warpdrive")
        err = excinfo.value
        assert isinstance(err, KeyError)
        for name in list_experiments():
            assert name in str(err)
        # KeyError repr-quoting must not mangle the message
        assert str(err).startswith("unknown experiment")

    def test_descriptions_are_set(self):
        for name in list_experiments():
            assert get_experiment(name).description


class TestSpecCompilation:
    def test_ensemble_spec_is_the_unpatched_control(self):
        spec = get_experiment("wsubbug").ensemble_spec()
        assert spec == EnsembleSpec(
            n_members=30, nsteps=2, collect_coverage=False
        )

    def test_experimental_model_applies_the_patch(self):
        assert get_experiment("goffgratch").experimental_model().patches == (
            "goffgratch",
        )
        assert get_experiment("goffgratch").experimental_fp() is None

    def test_with_overrides(self):
        small = get_experiment("wsubbug").with_(members=4, nsteps=1)
        assert (small.members, small.nsteps) == (4, 1)
        assert small.patch == "wsubbug"  # untouched fields survive

    def test_all_experiments_share_the_ensemble_stage_key(self):
        keys = {
            name: root_cause_pipeline(get_experiment(name)).keys()
            for name in list_experiments()
        }
        ensemble_keys = {k["control_ensemble"] for k in keys.values()}
        assert len(ensemble_keys) == 1  # one accepted ensemble for all six
        # but each patched experiment's verdict stage is its own
        ect_keys = {k["ect"] for k in keys.values()}
        assert len(ect_keys) == len(keys)

    def test_changed_ensemble_knob_splits_the_shared_key(self):
        base = root_cause_pipeline(get_experiment("wsubbug")).keys()
        other = root_cause_pipeline(
            get_experiment("wsubbug").with_(pertlim=1e-10)
        ).keys()
        assert base["control_ensemble"] != other["control_ensemble"]


class TestSweep:
    def test_sweep_shares_the_accepted_ensemble(self, tmp_path):
        small = [
            get_experiment(name).with_(
                members=6, nsteps=1, refine=RefinementConfig(members=4)
            )
            for name in ("wsubbug", "goffgratch")
        ]
        results = run_sweep(small, store_dir=tmp_path, backend="serial")
        first = results["wsubbug"].record("control_ensemble")
        second = results["goffgratch"].record("control_ensemble")
        assert first.status == "ran"
        assert second.status == "hit"  # the sweep's whole point
        assert second.member_misses == 0
        for name, result in results.items():
            assert result["report"].detected, name
            assert result["report"].localized, name

    def test_sweep_resolves_names(self, tmp_path):
        with pytest.raises(UnknownExperimentError):
            run_sweep(["warpdrive"], store_dir=tmp_path)

"""The set-cover solvers: planted optima, determinism, solver registry.

The branch-and-bound contract under test: for a fixed problem the solver
returns the *same* cover, cost and node count regardless of input
ordering, hash seed or platform — and that cover is a true optimum
(cross-checked against brute-force enumeration on generated instances).
"""

import itertools
import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selection import (
    BranchAndBoundSolver,
    InfeasibleSelectionError,
    SelectionError,
    SetCoverProblem,
    Solver,
    UnknownSolverError,
    get_solver,
    greedy_cover,
    list_solvers,
)

#: a planted instance on which greedy is provably suboptimal: greedy takes
#: Y (density 0.45) then must add Z (1.1 total); the optimum is X alone
GREEDY_TRAP = dict(
    elements=("a", "b"),
    coverers={"a": frozenset({"X", "Y"}), "b": frozenset({"X", "Z"})},
    weights={"X": 1.0, "Y": 0.45, "Z": 0.65},
)

#: a 6-element cycle whose optimum is any perfect matching (cost 3.0)
MATCHING = dict(
    elements=tuple(f"e{i}" for i in range(6)),
    coverers={
        "e0": frozenset({"m01", "m05"}),
        "e1": frozenset({"m01", "m12"}),
        "e2": frozenset({"m12", "m23"}),
        "e3": frozenset({"m23", "m34"}),
        "e4": frozenset({"m34", "m45"}),
        "e5": frozenset({"m45", "m05"}),
    },
    weights={m: 1.0 for m in ("m01", "m12", "m23", "m34", "m45", "m05")},
)


def brute_force_optimum(problem: SetCoverProblem) -> float:
    """Minimum cover cost by exhaustive enumeration (small instances)."""
    candidates = problem.candidates
    best = float("inf")
    for r in range(len(candidates) + 1):
        for subset in itertools.combinations(candidates, r):
            chosen = set(subset)
            if all(
                problem.coverers[e] & chosen for e in problem.elements
            ):
                best = min(best, problem.cost(chosen))
    return best


class TestGreedy:
    def test_greedy_takes_the_density_trap(self):
        problem = SetCoverProblem(**GREEDY_TRAP)
        assert greedy_cover(problem) == ("Y", "Z")
        assert problem.cost(("Y", "Z")) == pytest.approx(1.1)

    def test_greedy_respects_forced_anchors(self):
        problem = SetCoverProblem(**GREEDY_TRAP, forced=frozenset({"X"}))
        assert greedy_cover(problem) == ("X",)

    def test_greedy_prefers_in_community_modules_at_equal_density(self):
        problem = SetCoverProblem(
            elements=("a", "b"),
            coverers={
                "a": frozenset({"anchor"}),
                "b": frozenset({"near", "far"}),
            },
            weights={"anchor": 1.0, "near": 0.5, "far": 0.5},
            forced=frozenset({"anchor"}),
            groups={"anchor": 0, "near": 0, "far": 1},
        )
        # "far" < "near" lexicographically, but "near" shares the anchor's
        # community and wins the tie
        assert greedy_cover(problem) == ("anchor", "near")

    def test_infeasible_instance_names_the_uncoverable_elements(self):
        problem = SetCoverProblem(
            elements=("a", "ghost"),
            coverers={"a": frozenset({"X"}), "ghost": frozenset()},
            weights={"X": 1.0},
        )
        with pytest.raises(InfeasibleSelectionError, match="ghost") as err:
            greedy_cover(problem)
        assert err.value.elements == ("ghost",)
        assert isinstance(err.value, SelectionError)


class TestBranchAndBound:
    def test_beats_the_greedy_warm_start_on_the_trap(self):
        solution = BranchAndBoundSolver().solve(SetCoverProblem(**GREEDY_TRAP))
        assert solution.modules == ("X",)
        assert solution.cost == pytest.approx(1.0)
        assert solution.optimal
        assert solution.warm_start_cost == pytest.approx(1.1)
        assert solution.warm_start_gap == pytest.approx(0.1)
        assert solution.nodes_explored > 1

    def test_planted_matching_optimum(self):
        solution = BranchAndBoundSolver().solve(SetCoverProblem(**MATCHING))
        assert solution.cost == pytest.approx(3.0)
        assert solution.optimal
        assert len(solution.modules) == 3

    def test_forced_anchors_are_in_every_solution(self):
        problem = SetCoverProblem(**GREEDY_TRAP, forced=frozenset({"Z"}))
        solution = BranchAndBoundSolver().solve(problem)
        assert "Z" in solution.modules
        # with Z paid for, covering "a" via Y (0.45) beats X (1.0)
        assert solution.modules == ("Y", "Z")

    def test_node_limit_degrades_to_the_warm_start_not_to_garbage(self):
        solution = BranchAndBoundSolver(node_limit=1).solve(
            SetCoverProblem(**GREEDY_TRAP)
        )
        assert not solution.optimal
        assert solution.modules == ("Y", "Z")  # the greedy incumbent
        assert solution.cost == pytest.approx(solution.warm_start_cost)

    def test_input_order_does_not_change_solution_or_node_count(self):
        reference = BranchAndBoundSolver().solve(SetCoverProblem(**MATCHING))
        rng = random.Random(20260808)
        for _ in range(5):
            elements = list(MATCHING["elements"])
            rng.shuffle(elements)
            coverers = list(MATCHING["coverers"].items())
            rng.shuffle(coverers)
            weights = list(MATCHING["weights"].items())
            rng.shuffle(weights)
            shuffled = SetCoverProblem(
                elements=tuple(elements),
                coverers=dict(coverers),
                weights=dict(weights),
            )
            solution = BranchAndBoundSolver().solve(shuffled)
            assert solution.modules == reference.modules
            assert solution.cost == reference.cost
            assert solution.nodes_explored == reference.nodes_explored

    def test_warm_equals_cold_optimum(self, monkeypatch):
        """The greedy incumbent is an accelerator, not an oracle: a cold
        solve (warm start degraded to the whole candidate set) must land
        on the same optimum."""
        import repro.selection.setcover as setcover

        problem = SetCoverProblem(**GREEDY_TRAP)
        warm = BranchAndBoundSolver().solve(problem)
        monkeypatch.setattr(
            setcover, "greedy_cover", lambda p: p.candidates
        )
        cold = BranchAndBoundSolver().solve(problem)
        assert cold.modules == warm.modules
        assert cold.cost == pytest.approx(warm.cost)
        assert cold.warm_start_cost > warm.warm_start_cost
        assert cold.warm_start_gap > warm.warm_start_gap


@st.composite
def set_cover_instances(draw):
    """Small random weighted instances, every element coverable."""
    n_elements = draw(st.integers(min_value=1, max_value=4))
    n_modules = draw(st.integers(min_value=1, max_value=5))
    modules = [f"m{i}" for i in range(n_modules)]
    coverers = {}
    for e in range(n_elements):
        cover = draw(
            st.sets(
                st.sampled_from(modules), min_size=1, max_size=n_modules
            )
        )
        coverers[f"e{e}"] = frozenset(cover)
    # eighths: exactly representable, so cost sums have no fp ambiguity
    weights = {
        m: draw(st.integers(min_value=1, max_value=16)) / 8.0
        for m in modules
    }
    return SetCoverProblem(
        elements=tuple(sorted(coverers)), coverers=coverers, weights=weights
    )


@settings(max_examples=60, deadline=None)
@given(problem=set_cover_instances(), seed=st.integers(0, 2**16))
def test_property_optimal_deterministic_and_order_independent(problem, seed):
    solver = BranchAndBoundSolver()
    solution = solver.solve(problem)
    # a true cover
    assert all(
        problem.coverers[e] & set(solution.modules)
        for e in problem.elements
    )
    # at the brute-force optimum, never above the greedy warm start
    assert solution.optimal
    assert solution.cost == pytest.approx(brute_force_optimum(problem))
    assert solution.cost <= solution.warm_start_cost + 1e-9
    # and identical under a reshuffled presentation of the same instance
    rng = random.Random(seed)
    items = list(problem.coverers.items())
    rng.shuffle(items)
    welements = list(problem.weights.items())
    rng.shuffle(welements)
    shuffled = SetCoverProblem(
        elements=tuple(reversed(problem.elements)),
        coverers=dict(items),
        weights=dict(welements),
    )
    again = solver.solve(shuffled)
    assert again.modules == solution.modules
    assert again.cost == solution.cost
    assert again.nodes_explored == solution.nodes_explored


class TestRegistry:
    def test_list_solvers_names_both_backends(self):
        assert list_solvers() == ["branch-and-bound", "pulp"]

    def test_get_solver_instantiates_protocol_instances(self):
        for name in list_solvers():
            solver = get_solver(name, node_limit=10)
            assert isinstance(solver, Solver)
            assert solver.name == name

    def test_unknown_solver_is_a_keyerror_with_a_clean_message(self):
        with pytest.raises(UnknownSolverError) as err:
            get_solver("simplex")
        assert isinstance(err.value, KeyError)
        assert "simplex" in str(err.value)
        assert "branch-and-bound" in str(err.value)

    def test_bad_node_limit_rejected(self):
        with pytest.raises(ValueError, match="node_limit"):
            BranchAndBoundSolver(node_limit=0)


class TestPulp:
    def test_naming_pulp_never_imports_it(self):
        before = "pulp" in sys.modules
        get_solver("pulp")
        assert ("pulp" in sys.modules) == before

    def test_missing_pulp_raises_selection_error_with_advice(
        self, monkeypatch
    ):
        monkeypatch.setitem(sys.modules, "pulp", None)  # import -> error
        with pytest.raises(SelectionError, match="pip install pulp"):
            get_solver("pulp").solve(SetCoverProblem(**GREEDY_TRAP))

    def test_pulp_agrees_with_branch_and_bound(self):
        pytest.importorskip("pulp")
        for instance in (GREEDY_TRAP, MATCHING):
            problem = SetCoverProblem(**instance)
            via_pulp = get_solver("pulp").solve(problem)
            via_bnb = BranchAndBoundSolver().solve(problem)
            assert via_pulp.cost == pytest.approx(via_bnb.cost)
            assert via_pulp.optimal
            assert via_pulp.solver == "pulp"

    def test_pulp_respects_anchors(self):
        pytest.importorskip("pulp")
        problem = SetCoverProblem(**GREEDY_TRAP, forced=frozenset({"Z"}))
        solution = get_solver("pulp").solve(problem)
        assert solution.modules == ("Y", "Z")

"""The selection stage on the real model: stage wiring, warm start, store.

One small (6-member) wsubbug pipeline run backs the whole module; every
assertion reads its outputs, so the expensive part runs once.
"""

import pytest

from repro.experiments import get_experiment
from repro.pipeline import RootCauseAnalysis, root_cause_pipeline
from repro.refine import RefinementConfig
from repro.selection import (
    SelectionResult,
    SelectionSpec,
    select_culprits,
)

SMALL_EXPERIMENT = get_experiment("wsubbug").with_(
    members=6, nsteps=1, refine=RefinementConfig(members=4)
)


@pytest.fixture(scope="module")
def small_run(tmp_path_factory):
    store = tmp_path_factory.mktemp("selection-store")
    result = RootCauseAnalysis(
        SMALL_EXPERIMENT, store_dir=store, backend="serial"
    ).run()
    return store, result


class TestStage:
    def test_selection_output_contains_the_culprit(self, small_run):
        _, result = small_run
        selection = result["selection"]
        assert isinstance(selection, SelectionResult)
        assert "microp_aero" in selection.modules
        assert selection.optimal
        assert selection.solver == "branch-and-bound"
        assert selection.evidence is not None
        assert "WSUB" in selection.evidence.variables

    def test_cover_stays_inside_the_ranked_slice_plus_anchors(
        self, small_run
    ):
        _, result = small_run
        selection = result["selection"]
        ranked = result["ranked_slice"]
        allowed = set(ranked.modules) | set(selection.anchors)
        assert set(selection.modules) <= allowed
        # modules are ordered strongest slice evidence first
        scores = [selection.scores[m] for m in selection.modules]
        assert scores == sorted(scores, reverse=True)

    def test_refinement_warm_starts_from_the_selection(self, small_run):
        _, result = small_run
        refined = result["refined"]
        assert refined.extra["warm_start"] == "selection"
        assert refined.extra["selection_modules"] == len(result["selection"])
        # the selection already beat the target: refinement is a no-op
        assert refined.n_iterations == 0
        assert set(refined.modules) == set(result["selection"].modules)

    def test_report_carries_the_selection_block(self, small_run):
        _, result = small_run
        block = result["report"].selection
        assert block is not None
        assert block["modules"] == list(result["selection"].modules)
        assert block["solver"] == "branch-and-bound"
        assert block["optimal"] is True
        line = f"- selection: {len(block['modules'])} modules"
        assert line in result["report"].to_markdown()

    def test_selection_resumes_from_the_store_bit_identically(
        self, small_run
    ):
        store, first = small_run
        second = RootCauseAnalysis(
            SMALL_EXPERIMENT, store_dir=store, backend="serial"
        ).run()
        assert second.record("selection").status == "hit"
        assert second["selection"] == first["selection"]
        assert second.record("refined").status == "hit"
        assert second["refined"].extra == first["refined"].extra

    def test_solver_knob_changes_the_selection_stage_key(self):
        base = root_cause_pipeline(SMALL_EXPERIMENT).keys()
        pulped = root_cause_pipeline(
            SMALL_EXPERIMENT.with_(
                selection=SelectionSpec(solver="pulp")
            )
        ).keys()
        assert base["selection"] != pulped["selection"]
        assert base["ranked_slice"] == pulped["ranked_slice"]


class TestSelectCulprits:
    def test_is_deterministic_for_fixed_inputs(self, small_run):
        _, result = small_run
        kwargs = dict(
            graph=result["metagraph"],
            source=result["control_source"],
            coverage=result["coverage_run"].coverage,
            ect_result=result["ect"],
            ranked=result["ranked_slice"],
        )
        first = select_culprits(
            result["control_ensemble"], result["experimental_runs"], **kwargs
        )
        second = select_culprits(
            result["control_ensemble"], result["experimental_runs"], **kwargs
        )
        assert first == second
        assert first.nodes_explored == second.nodes_explored

    def test_requires_failing_runs(self, small_run):
        _, result = small_run
        with pytest.raises(ValueError, match="at least one failing run"):
            select_culprits(result["control_ensemble"], [])

    def test_round_trip(self, small_run):
        _, result = small_run
        selection = result["selection"]
        again = SelectionResult.from_dict(selection.to_dict())
        assert again == selection
        assert again.warm_start_gap == selection.warm_start_gap
        assert bool(again) and len(again) == len(selection)

    def test_metrics_and_span_recorded(self, small_run):
        from repro.obs import get_metrics

        counters = get_metrics().counters()
        assert counters.get("selection.solves", 0) >= 1

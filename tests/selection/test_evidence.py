"""Unit tests of the robust affected-variable evidence layer."""

import pytest

from repro.selection import EvidenceSelection, select_affected_variables
from repro.selection.evidence import EVIDENCE_METHODS

#: one gross outlier (a broken invariant) over chaotic background noise
OUTLIER_WEIGHTS = {
    "WSUB": 14.5,
    "PRECT": 1.2,
    "FSNS": 1.1,
    "PS": 1.0,
    "U10": 0.9,
    "TS": 0.8,
    "CLDL": 0.7,
    "RELHUM": 0.6,
    "QRL": 0.5,
    "AODVIS": 0.4,
}


class TestMad:
    def test_outlier_is_the_only_strong_variable(self):
        ev = select_affected_variables(OUTLIER_WEIGHTS, method="mad")
        # MAD threshold: median 0.85, MAD 0.25 -> cut at 1.6: only WSUB
        assert ev.anchors == ("WSUB",)
        assert ev.threshold == pytest.approx(0.85 + 3.0 * 0.25)
        # but the selection is padded to min_variables for set-cover slack
        assert len(ev.variables) == 6
        assert ev.variables[0] == "WSUB"
        assert ev.method == "mad"

    def test_outlier_does_not_mask_a_second_signal(self):
        # a second strong-but-subtler deviation survives next to the gross
        # one — the property a mean/std cut would lose
        weights = dict(OUTLIER_WEIGHTS, PRECT=3.0)
        ev = select_affected_variables(weights, method="mad")
        assert ev.anchors == ("WSUB", "PRECT")

    def test_flat_weights_fall_back_to_topk_anchoring(self):
        flat = {f"V{i}": 1.0 for i in range(10)}
        ev = select_affected_variables(flat, method="mad")
        # MAD = 0 and no weight exceeds the median: nothing is strong,
        # anchors fall back to the strongest selected (all tied -> by name)
        assert len(ev.variables) == 6
        assert ev.anchors == ("V0", "V1", "V2", "V3")

    def test_selection_is_capped_at_max_variables(self):
        weights = {f"V{i}": 100.0 + i for i in range(12)}  # 12 strong
        weights.update({f"w{i}": 1.0 + 0.01 * i for i in range(20)})
        ev = select_affected_variables(weights, method="mad")
        assert len(ev.variables) == 8
        assert all(v.startswith("V") for v in ev.variables)
        assert ev.variables[0] == "V11"  # strongest first
        assert ev.anchors == ("V11", "V10", "V9", "V8")


class TestLasso:
    def test_shrinkage_keeps_at_most_max_variables_active(self):
        ev = select_affected_variables(
            OUTLIER_WEIGHTS, method="lasso", min_variables=4, max_variables=4
        )
        # lambda is the 5th-largest weight (0.9); only WSUB clears the
        # strong cut, the rest pad the selection up to min_variables
        assert ev.variables == ("WSUB", "PRECT", "FSNS", "PS")
        assert ev.anchors == ("WSUB",)
        assert ev.threshold == pytest.approx(0.9 + 3.0 * 0.25)

    def test_small_population_has_zero_knot(self):
        weights = {"A": 5.0, "B": 1.0}
        ev = select_affected_variables(weights, method="lasso")
        # fewer weights than max_variables: lambda = 0, both stay active
        assert ev.variables == ("A", "B")


class TestTopk:
    def test_legacy_cut_is_the_k_strongest(self):
        ev = select_affected_variables(
            OUTLIER_WEIGHTS, method="topk", max_variables=3, min_variables=3
        )
        assert ev.variables == ("WSUB", "PRECT", "FSNS")
        assert ev.anchors == ("WSUB", "PRECT", "FSNS")


class TestEdgesAndValidation:
    def test_empty_weights_select_nothing(self):
        ev = select_affected_variables({}, method="mad")
        assert ev.variables == ()
        assert ev.anchors == ()
        assert not ev

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown evidence method"):
            select_affected_variables(OUTLIER_WEIGHTS, method="ridge")

    def test_bad_counts_raise(self):
        with pytest.raises(ValueError, match=">= 1"):
            select_affected_variables(OUTLIER_WEIGHTS, min_variables=0)
        with pytest.raises(ValueError, match="must not exceed"):
            select_affected_variables(
                OUTLIER_WEIGHTS, min_variables=9, max_variables=3
            )

    def test_every_method_is_deterministic(self):
        for method in EVIDENCE_METHODS:
            a = select_affected_variables(dict(OUTLIER_WEIGHTS), method=method)
            b = select_affected_variables(
                dict(reversed(list(OUTLIER_WEIGHTS.items()))), method=method
            )
            assert a == b, method


class TestEvidenceSelection:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            EvidenceSelection(variables=("A", "A"))

    def test_anchors_must_be_selected(self):
        with pytest.raises(ValueError, match="anchors"):
            EvidenceSelection(variables=("A",), anchors=("B",))

    def test_round_trip_and_dunder_protocol(self):
        ev = select_affected_variables(OUTLIER_WEIGHTS, method="mad")
        again = EvidenceSelection.from_dict(ev.to_dict())
        assert again == ev
        assert len(ev) == len(ev.variables)
        assert "WSUB" in ev and "NOT_A_FIELD" not in ev

"""Execution backends: conformance, registry, selection knobs, spawn path."""

import numpy as np
import pytest

from repro.ensemble import (
    EnsembleSpec,
    ExecutionBackend,
    InvalidBatchSizeError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    UnknownBackendError,
    VectorizedBackend,
    generate_ensemble,
    get_backend,
    list_backends,
    register_backend,
)
from repro.ensemble.backends import (
    BACKEND_ENV_VAR,
    VEC_BATCH_ENV_VAR,
    _model_token,
    _WORKER_SOURCES,
)
from repro.model import build_model_source

SMALL = EnsembleSpec(n_members=4, nsteps=1)


@pytest.fixture(scope="module")
def shared_source():
    return build_model_source(SMALL.model)


@pytest.fixture(scope="module")
def serial_ensemble(shared_source):
    return generate_ensemble(SMALL, source=shared_source, backend="serial")


class TestConformance:
    """Acceptance: every backend is bit-identical to the serial reference."""

    @pytest.mark.parametrize("backend", ["thread", "process", "vectorized"])
    def test_backend_matches_serial_bit_for_bit(
        self, backend, shared_source, serial_ensemble
    ):
        workers = None if backend == "vectorized" else 2
        ens = generate_ensemble(
            SMALL, source=shared_source, backend=backend, max_workers=workers
        )
        np.testing.assert_array_equal(ens.matrix, serial_ensemble.matrix)
        assert ens.variable_names == serial_ensemble.variable_names
        # merged coverage must be identical too — coverage is part of the
        # artifact, not a serial-only extra
        assert ens.coverage == serial_ensemble.coverage
        for mine, ref in zip(ens.members, serial_ensemble.members):
            assert mine.coverage == ref.coverage
            assert mine.statements_executed == ref.statements_executed
            assert mine.prng_draws == ref.prng_draws

    def test_process_spawn_start_method(self, shared_source, serial_ensemble):
        """The spawn path (workers rebuild + reparse) stays bit-identical."""
        backend = ProcessBackend(max_workers=2, mp_context="spawn")
        ens = generate_ensemble(SMALL, source=shared_source, backend=backend)
        np.testing.assert_array_equal(ens.matrix, serial_ensemble.matrix)
        assert ens.coverage == serial_ensemble.coverage

    def test_backend_name_recorded_in_stats(self, serial_ensemble):
        assert serial_ensemble.stats["backend"] == "serial"


class TestWorkerSourceCache:
    def test_parent_warmup_entry_is_evicted_after_the_pool(
        self, shared_source
    ):
        """The fork warm-up must not pin parsed trees for the process
        lifetime: the parent-side cache entry is scoped to the pool."""
        token = _model_token(SMALL.model)
        _WORKER_SOURCES.pop(token, None)
        generate_ensemble(
            SMALL, source=shared_source, backend="process", max_workers=2
        )
        assert token not in _WORKER_SOURCES

    def test_preexisting_worker_cache_entry_is_restored(self, shared_source):
        token = _model_token(SMALL.model)
        sentinel = shared_source
        _WORKER_SOURCES[token] = sentinel
        try:
            generate_ensemble(
                SMALL, source=shared_source, backend="process", max_workers=2
            )
            assert _WORKER_SOURCES[token] is sentinel
        finally:
            _WORKER_SOURCES.pop(token, None)

    def test_model_token_distinguishes_patches(self):
        from repro.model import ModelConfig

        base = _model_token(ModelConfig())
        patched = _model_token(ModelConfig(patches=("wsubbug",)))
        assert base != patched


class TestRegistry:
    def test_builtin_backends_listed(self):
        assert {"serial", "thread", "process", "vectorized"} <= set(
            list_backends()
        )

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_get_backend_passthrough_instance(self):
        backend = ThreadBackend(max_workers=2)
        assert get_backend(backend) is backend

    def test_max_workers_cannot_silently_override_an_instance(self):
        backend = ThreadBackend(max_workers=2)
        with pytest.raises(ValueError, match="max_workers"):
            get_backend(backend, max_workers=4)

    def test_unknown_backend_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("quantum")

    def test_unknown_backend_error_type_and_listing(self):
        """Mirrors UnknownPatchError: a KeyError that is also the
        historical ValueError, naming every registered backend."""
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("quantum")
        err = excinfo.value
        assert isinstance(err, KeyError)
        assert isinstance(err, ValueError)
        for name in list_backends():
            assert name in str(err)
        # KeyError's repr-quoting must not mangle the message
        assert str(err).startswith("unknown execution backend")

    def test_unknown_backend_from_environment_fails_fast(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warpdrive")
        with pytest.raises(UnknownBackendError, match="warpdrive"):
            get_backend(None)

    def test_unknown_backend_from_spec_fails_fast(self, shared_source):
        spec = EnsembleSpec(n_members=2, nsteps=1, backend="warpdrive")
        with pytest.raises(UnknownBackendError, match="warpdrive"):
            generate_ensemble(spec, source=shared_source)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", lambda max_workers=None: SerialBackend())

    def test_custom_backend_registers_and_runs(self, shared_source):
        class CountingSerial(SerialBackend):
            name = "counting-serial"
            calls = 0

            def run_members(self, source, jobs):
                type(self).calls += len(jobs)
                yield from super().run_members(source, jobs)

        try:
            register_backend(
                "counting-serial", lambda max_workers=None: CountingSerial()
            )
            ens = generate_ensemble(
                SMALL, source=shared_source, backend="counting-serial"
            )
            assert ens.n_members == 4
            assert CountingSerial.calls == 4
        finally:
            from repro.ensemble import backends as mod

            mod._BACKENDS.pop("counting-serial", None)


class TestSelectionKnobs:
    def test_spec_backend_field_selects(self, shared_source):
        import dataclasses

        spec = dataclasses.replace(SMALL, backend="serial")
        ens = generate_ensemble(spec, source=shared_source)
        assert ens.stats["backend"] == "serial"

    def test_argument_overrides_spec(self, shared_source):
        import dataclasses

        spec = dataclasses.replace(SMALL, backend="thread")
        ens = generate_ensemble(spec, source=shared_source, backend="serial")
        assert ens.stats["backend"] == "serial"

    def test_environment_variable_is_the_fallback(
        self, shared_source, monkeypatch
    ):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        ens = generate_ensemble(SMALL, source=shared_source)
        assert ens.stats["backend"] == "serial"

    def test_environment_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(get_backend(None), ThreadBackend)

    def test_spec_backend_does_not_change_member_configs(self):
        import dataclasses

        spec = dataclasses.replace(SMALL, backend="process")
        assert spec.member_configs() == SMALL.member_configs()


class TestBackendCacheInterplay:
    def test_process_misses_fill_cache_for_serial_hits(
        self, shared_source, tmp_path
    ):
        cold = generate_ensemble(
            SMALL,
            source=shared_source,
            cache_dir=tmp_path,
            backend="process",
            max_workers=2,
        )
        assert cold.cache_misses == 4 and cold.cache_hits == 0
        warm = generate_ensemble(
            SMALL, source=shared_source, cache_dir=tmp_path, backend="serial"
        )
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        np.testing.assert_array_equal(warm.matrix, cold.matrix)
        assert warm.coverage == cold.coverage


class TestVectorizedBatchSize:
    """The vectorized batch width is a *where* knob: it must never change
    results or cache keys, and nonsense values fail before any member runs."""

    def test_constructor_rejects_nonsense(self):
        for bad in (0, -3, True, 2.5, "x"):
            with pytest.raises(InvalidBatchSizeError):
                VectorizedBackend(batch_size=bad)

    def test_error_message_names_the_origin(self):
        with pytest.raises(InvalidBatchSizeError, match="batch_size"):
            VectorizedBackend(batch_size=0)

    def test_describe_records_the_width(self):
        assert VectorizedBackend().describe() == "vectorized(batch=auto)"
        assert (
            VectorizedBackend(batch_size=2).describe()
            == "vectorized(batch=2)"
        )

    def test_batched_generation_is_bit_identical(
        self, shared_source, serial_ensemble
    ):
        ens = generate_ensemble(
            SMALL,
            source=shared_source,
            backend=VectorizedBackend(batch_size=2),
        )
        np.testing.assert_array_equal(ens.matrix, serial_ensemble.matrix)
        assert ens.coverage == serial_ensemble.coverage
        assert ens.stats["backend"] == "vectorized(batch=2)"

    def test_env_var_sets_the_width(
        self, shared_source, serial_ensemble, monkeypatch
    ):
        monkeypatch.setenv(VEC_BATCH_ENV_VAR, "3")
        ens = generate_ensemble(
            SMALL, source=shared_source, backend="vectorized"
        )
        assert ens.stats["backend"] == "vectorized(batch=3)"
        np.testing.assert_array_equal(ens.matrix, serial_ensemble.matrix)

    def test_env_var_nonsense_fails_fast(self, monkeypatch):
        monkeypatch.setenv(VEC_BATCH_ENV_VAR, "banana")
        with pytest.raises(InvalidBatchSizeError, match="banana"):
            VectorizedBackend().effective_batch_size()

    def test_constructor_width_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(VEC_BATCH_ENV_VAR, "3")
        assert VectorizedBackend(batch_size=2).effective_batch_size() == 2

    def test_spec_vec_batch_configures_the_backend(self, shared_source):
        import dataclasses

        spec = dataclasses.replace(SMALL, backend="vectorized", vec_batch=2)
        ens = generate_ensemble(spec, source=shared_source)
        assert ens.stats["backend"] == "vectorized(batch=2)"

    def test_spec_vec_batch_validates_at_construction(self):
        with pytest.raises(InvalidBatchSizeError, match="vec_batch"):
            EnsembleSpec(n_members=2, vec_batch=0)

    def test_instance_width_wins_over_spec(self, shared_source):
        import dataclasses

        spec = dataclasses.replace(SMALL, vec_batch=3)
        ens = generate_ensemble(
            spec,
            source=shared_source,
            backend=VectorizedBackend(batch_size=2),
        )
        assert ens.stats["backend"] == "vectorized(batch=2)"

    def test_vec_batch_does_not_change_member_configs_or_stage_keys(self):
        import dataclasses

        from repro.pipeline.core import config_token

        spec = dataclasses.replace(SMALL, vec_batch=2)
        assert spec.member_configs() == SMALL.member_configs()
        # a pure *where* knob: stage cache keys must not see it
        assert config_token(spec) == config_token(SMALL)
        assert "vec_batch" not in config_token(spec)


def test_execution_backend_is_abstract():
    with pytest.raises(TypeError):
        ExecutionBackend()

"""generate_ensemble: fan-out, determinism, caching, coverage merge."""

import numpy as np
import pytest

from repro.ensemble import (
    EnsembleGenerator,
    EnsembleSpec,
    generate_ensemble,
    member_cache_key,
)
from repro.model import ModelConfig, build_model_source
from repro.runtime import CoverageTrace, run_model

SMALL = EnsembleSpec(n_members=4, nsteps=1)


@pytest.fixture(scope="module")
def shared_source():
    return build_model_source(SMALL.model)


@pytest.fixture(scope="module")
def small_ensemble(shared_source):
    return generate_ensemble(SMALL, source=shared_source)


class TestGeneration:
    def test_matrix_shape_and_names(self, small_ensemble):
        ens = small_ensemble
        assert ens.matrix.shape == (4, len(ens.variable_names))
        finals = [n for n in ens.variable_names if not n.endswith("@first")]
        firsts = [n for n in ens.variable_names if n.endswith("@first")]
        assert len(finals) == len(firsts)
        assert [f"{n}@first" for n in finals] == firsts

    def test_matrix_is_finite_and_members_differ(self, small_ensemble):
        ens = small_ensemble
        assert np.isfinite(ens.matrix).all()
        # members use distinct seeds, so rows must differ
        assert len({tuple(row) for row in ens.matrix}) == ens.n_members

    def test_rows_align_with_member_run_results(self, small_ensemble):
        ens = small_ensemble
        for i, member in enumerate(ens.members):
            np.testing.assert_array_equal(
                ens.matrix[i], ens.run_vector(member)
            )

    def test_generation_is_deterministic(self, shared_source, small_ensemble):
        again = generate_ensemble(SMALL, source=shared_source)
        np.testing.assert_array_equal(again.matrix, small_ensemble.matrix)
        assert again.coverage == small_ensemble.coverage

    def test_parallel_fanout_matches_serial(self, shared_source, small_ensemble):
        wide = generate_ensemble(SMALL, source=shared_source, max_workers=4)
        serial = generate_ensemble(SMALL, source=shared_source, max_workers=1)
        np.testing.assert_array_equal(wide.matrix, serial.matrix)
        np.testing.assert_array_equal(wide.matrix, small_ensemble.matrix)

    def test_n_override(self, shared_source):
        ens = generate_ensemble(
            SMALL, n=2, source=shared_source, max_workers=1
        )
        assert ens.n_members == 2

    def test_mismatched_source_rejected(self):
        other = build_model_source(ModelConfig(patches=("wsubbug",)))
        with pytest.raises(ValueError, match="different ModelConfig"):
            generate_ensemble(SMALL, source=other)

    def test_progress_callback_sees_every_member(self, shared_source):
        seen = []
        generate_ensemble(
            SMALL,
            source=shared_source,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestCoverageMerge:
    def test_merged_coverage_is_sum_of_member_counts(self, small_ensemble):
        """Satellite: the ensemble trace equals the per-member sum."""
        ens = small_ensemble
        manual: dict = {}
        for member in ens.members:
            for key, count in member.coverage.counts.items():
                manual[key] = manual.get(key, 0) + count
        assert ens.coverage.counts == manual
        assert ens.coverage.total_statements == sum(
            m.coverage.total_statements for m in ens.members
        )

    def test_merge_is_commutative(self, small_ensemble):
        members = small_ensemble.members
        forward = CoverageTrace().merged(*(m.coverage for m in members))
        backward = CoverageTrace().merged(
            *(m.coverage for m in reversed(members))
        )
        assert forward == backward


class TestDiskCache:
    def test_cache_round_trip_is_bit_identical(self, shared_source, tmp_path):
        cold = generate_ensemble(
            SMALL, source=shared_source, cache_dir=tmp_path
        )
        assert cold.cache_hits == 0 and cold.cache_misses == 4
        warm = generate_ensemble(
            SMALL, source=shared_source, cache_dir=tmp_path
        )
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        np.testing.assert_array_equal(warm.matrix, cold.matrix)
        assert warm.coverage == cold.coverage
        for a, b in zip(warm.members, cold.members):
            assert a.statements_executed == b.statements_executed
            assert a.prng_draws == b.prng_draws
            for name in a.outputs:
                np.testing.assert_array_equal(a.outputs[name], b.outputs[name])
                np.testing.assert_array_equal(
                    a.first_outputs[name], b.first_outputs[name]
                )

    def test_growing_ensemble_reuses_cached_members(
        self, shared_source, tmp_path
    ):
        generate_ensemble(SMALL, source=shared_source, cache_dir=tmp_path)
        grown = generate_ensemble(
            SMALL, n=6, source=shared_source, cache_dir=tmp_path
        )
        assert grown.cache_hits == 4 and grown.cache_misses == 2

    def test_key_depends_on_patched_source_and_config(self, shared_source):
        config = SMALL.member_config(0)
        base = member_cache_key(shared_source, config)
        patched_source = build_model_source(ModelConfig(patches=("wsubbug",)))
        assert member_cache_key(patched_source, config) != base
        other = SMALL.member_config(1)
        assert member_cache_key(shared_source, other) != base

    def test_key_covers_every_fp_and_coverage_knob(self, shared_source):
        """Regression: a cache hit must never cross numerically (FPConfig)
        or observationally (coverage-enablement) distinct configurations."""
        import dataclasses

        from repro.runtime import FPConfig

        config = SMALL.member_config(0)
        keys = {member_cache_key(shared_source, config)}

        def add(**overrides):
            variant = dataclasses.replace(config, **overrides)
            key = member_cache_key(shared_source, variant)
            assert key not in keys, f"key collision for {overrides!r}"
            keys.add(key)

        add(fp=FPConfig(fma=True))
        # FMA nowhere (empty set) and FMA everywhere (None) are different
        # builds and must hash differently even though both have fma=True
        add(fp=FPConfig(fma=True, fma_modules=frozenset()))
        add(fp=FPConfig(fma=True, fma_modules=frozenset({"micro_mg"})))
        add(fp=FPConfig(flush_to_zero=True))
        add(collect_coverage=False)
        add(max_statements=123_456)

    def test_fp_token_tracks_every_fpconfig_field(self):
        """A field added to FPConfig must flow into the hash automatically."""
        import dataclasses

        from repro.ensemble.cache import _fp_token
        from repro.runtime import FPConfig

        token = _fp_token(FPConfig())
        assert set(token) == {f.name for f in dataclasses.fields(FPConfig)}

    def test_corrupt_cache_entry_falls_back_to_running(
        self, shared_source, tmp_path
    ):
        config = SMALL.member_config(0)
        key = member_cache_key(shared_source, config)
        (tmp_path / f"{key}.npz").write_bytes(b"not an npz file")
        ens = generate_ensemble(
            SMALL, source=shared_source, cache_dir=tmp_path
        )
        assert ens.n_members == 4
        assert np.isfinite(ens.matrix).all()


class TestEnsembleGenerator:
    def test_generator_facade(self, tmp_path):
        gen = EnsembleGenerator(SMALL, cache_dir=tmp_path)
        ens = gen.generate()
        assert ens.n_members == 4
        runs = gen.experimental_runs(count=2)
        assert len(runs) == 2
        # experimental runs come from held-out seeds, never member seeds
        member_seeds = {c.seed for c in SMALL.member_configs()}
        assert all(r.config.seed not in member_seeds for r in runs)
        # vectors align with the ensemble variable layout
        assert ens.run_vector(runs[0]).shape == (len(ens.variable_names),)

"""RunArtifact: payload round-trips, rehydration, corruption handling."""

import numpy as np
import pytest

from repro.ensemble import EnsembleSpec, MemberCache, RunArtifact, member_cache_key
from repro.ensemble.artifact import ArtifactError
from repro.model import build_model_source
from repro.runtime import run_model

SMALL = EnsembleSpec(n_members=2, nsteps=1)


@pytest.fixture(scope="module")
def source():
    return build_model_source(SMALL.model)


@pytest.fixture(scope="module")
def result(source):
    return run_model(SMALL.member_config(0), source=source)


@pytest.fixture(scope="module")
def artifact(source, result):
    key = member_cache_key(source, result.config)
    return RunArtifact.from_result(result, key)


class TestRoundTrip:
    def test_payload_round_trip_is_lossless(self, artifact):
        again = RunArtifact.from_payload(artifact.to_payload())
        assert again.config_key == artifact.config_key
        assert again.statements_executed == artifact.statements_executed
        assert again.prng_draws == artifact.prng_draws
        assert again.coverage == artifact.coverage
        assert set(again.outputs) == set(artifact.outputs)
        for name in artifact.outputs:
            np.testing.assert_array_equal(
                again.outputs[name], artifact.outputs[name]
            )
            np.testing.assert_array_equal(
                again.first_outputs[name], artifact.first_outputs[name]
            )

    def test_npz_round_trip_through_cache(self, artifact, tmp_path):
        cache = MemberCache(tmp_path)
        cache.store_artifact(artifact)
        loaded = cache.load_artifact(artifact.config_key)
        assert loaded is not None
        assert loaded.coverage == artifact.coverage
        for name in artifact.outputs:
            np.testing.assert_array_equal(
                loaded.outputs[name], artifact.outputs[name]
            )

    def test_rehydration_matches_original_result(self, artifact, result):
        back = artifact.to_result(result.config)
        assert back.config == result.config
        assert back.statements_executed == result.statements_executed
        assert back.coverage == result.coverage
        for name in result.outputs:
            np.testing.assert_array_equal(back.outputs[name], result.outputs[name])


class TestCorruption:
    def test_wrong_format_version_rejected(self, artifact):
        payload = artifact.to_payload()
        payload["format"] = np.array([999], dtype=np.int64)
        with pytest.raises(ArtifactError, match="format"):
            RunArtifact.from_payload(payload)

    def test_missing_meta_rejected(self, artifact):
        payload = artifact.to_payload()
        del payload["meta"]
        with pytest.raises(ArtifactError):
            RunArtifact.from_payload(payload)

    @pytest.mark.parametrize(
        "garbage",
        [
            b"",  # zero-length -> EOFError inside np.load
            b"PK\x03\x04 corrupt zip body",  # zip magic -> BadZipFile
            b"not an npz at all",  # -> ValueError
        ],
        ids=["empty", "bad-zip", "not-zip"],
    )
    def test_corrupt_cache_entries_are_misses_not_crashes(
        self, artifact, tmp_path, garbage
    ):
        cache = MemberCache(tmp_path)
        (tmp_path / f"{artifact.config_key}.npz").write_bytes(garbage)
        assert cache.load_artifact(artifact.config_key) is None
        assert cache.misses == 1

    def test_cache_refuses_entry_stored_under_wrong_key(
        self, artifact, tmp_path
    ):
        cache = MemberCache(tmp_path)
        cache.store_artifact(artifact)
        # simulate a renamed/mangled entry: same payload, different key
        bogus = "0" * 64
        (tmp_path / f"{artifact.config_key}.npz").rename(
            tmp_path / f"{bogus}.npz"
        )
        assert cache.load_artifact(bogus) is None
        assert cache.misses == 1

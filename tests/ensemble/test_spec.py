"""EnsembleSpec: deterministic member derivation and validation."""

import pytest

from repro.ensemble import EnsembleSpec
from repro.model import ModelConfig
from repro.runtime import FPConfig


class TestMemberDerivation:
    def test_member_configs_are_deterministic(self):
        a = EnsembleSpec(n_members=6).member_configs()
        b = EnsembleSpec(n_members=6).member_configs()
        assert a == b

    def test_members_have_distinct_seeds_and_pertlims(self):
        spec = EnsembleSpec(n_members=12)
        configs = spec.member_configs()
        assert len({c.seed for c in configs}) == 12
        assert len({c.pertlim for c in configs}) == 12

    def test_pertlim_draws_respect_magnitude(self):
        spec = EnsembleSpec(n_members=20, pertlim=1e-13)
        for config in spec.member_configs():
            assert abs(config.pertlim) <= 1e-13

    def test_growing_the_ensemble_keeps_existing_members(self):
        small = EnsembleSpec(n_members=5).member_configs()
        large = EnsembleSpec(n_members=9).member_configs()
        assert large[:5] == small

    def test_different_base_seeds_give_disjoint_members(self):
        a = {c.seed for c in EnsembleSpec(base_seed=1).member_configs()}
        b = {c.seed for c in EnsembleSpec(base_seed=2).member_configs()}
        assert not a & b

    def test_member_config_carries_spec_knobs(self):
        model = ModelConfig(patches=("wsubbug",))
        fp = FPConfig(fma=True)
        spec = EnsembleSpec(
            model=model, n_members=3, nsteps=1, fp=fp, collect_coverage=False
        )
        config = spec.member_config(0)
        assert config.model == model
        assert config.nsteps == 1
        assert config.fp == fp
        assert config.collect_coverage is False

    def test_member_index_out_of_range(self):
        spec = EnsembleSpec(n_members=3)
        with pytest.raises(IndexError):
            spec.member_config(3)
        with pytest.raises(IndexError):
            spec.member_config(-1)


class TestExperimentalConfigs:
    def test_experimental_seeds_disjoint_from_members(self):
        spec = EnsembleSpec(n_members=30)
        member_seeds = {c.seed for c in spec.member_configs()}
        exp_seeds = {spec.experimental_config(i).seed for i in range(30)}
        assert not member_seeds & exp_seeds

    def test_experimental_config_overrides(self):
        spec = EnsembleSpec()
        patched = ModelConfig(patches=("goffgratch",))
        config = spec.experimental_config(0, model=patched)
        assert config.model == patched
        assert config.fp == spec.fp
        fma = spec.experimental_config(0, fp=FPConfig(fma=True))
        assert fma.model == spec.model
        assert fma.fp.fma


class TestValidation:
    def test_too_few_members_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            EnsembleSpec(n_members=1)

    def test_non_int_members_rejected(self):
        with pytest.raises(ValueError, match="n_members"):
            EnsembleSpec(n_members=2.5)

    def test_bad_runtime_knobs_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="nsteps"):
            EnsembleSpec(nsteps=0)
        with pytest.raises(ValueError, match="pertlim"):
            EnsembleSpec(pertlim=float("nan"))

"""Shared obs fixtures: every test starts with a clean tracer/registry.

The tracer and metrics registry are process-global by design; without
this reset, spans and counters would leak between tests (and from the
rest of the suite into this one).
"""

import pytest

from repro.obs import get_metrics, get_tracer


@pytest.fixture(autouse=True)
def clean_observability():
    tracer = get_tracer()
    tracer.disable()
    tracer.drain()
    get_metrics().reset()
    yield
    tracer.disable()
    tracer.drain()

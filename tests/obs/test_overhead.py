"""The <3%% rule: a disabled tracer must be invisible in run wall time.

Two complementary proofs, both cheap enough for every CI leg:

* a micro proof that the disabled fast path allocates nothing — every
  call returns the one shared ``NULL_SPAN`` and never evaluates lazy
  attribute thunks;
* an estimate proof that prices the disabled path against a real
  control run: measure the per-call cost of the disabled ``span()``
  call, multiply by a *generous* bound on the number of span sites a
  run crosses, and require the product to stay under 3%% of the
  measured model wall time.

The estimate deliberately over-counts (every stage, every member, every
refine iteration, plus slack) so a pass here implies the acceptance
bound with margin, without the noise of timing two full pipeline runs
in CI.
"""

import time

from repro.obs import NULL_SPAN, Tracer
from repro.runtime import RunConfig, run_model

#: generous upper bound on tracer.span() call sites crossed by one
#: control run: 10 stages + 100 members + 200 refine iterations + slack
SPAN_SITES_PER_RUN = 1000

CALLS = 20_000


def _disabled_cost_per_call() -> float:
    tracer = Tracer()
    attrs = {"k": 1}
    start = time.perf_counter()
    for _ in range(CALLS):
        with tracer.span("site", attrs):
            pass
    return (time.perf_counter() - start) / CALLS


def test_disabled_span_is_the_shared_null_singleton():
    tracer = Tracer()
    calls = []
    handles = {
        id(tracer.span("a")),
        id(tracer.span("b", {"k": 1})),
        id(tracer.span("c", lambda: calls.append(1) or {})),
    }
    assert handles == {id(NULL_SPAN)}
    assert calls == []  # lazy attrs never evaluated while disabled


def test_disabled_overhead_under_three_percent_of_a_control_run():
    # a real (small) control run of the reference model
    start = time.perf_counter()
    run_model(RunConfig(nsteps=1))
    run_wall = time.perf_counter() - start

    per_call = _disabled_cost_per_call()
    estimated_overhead = per_call * SPAN_SITES_PER_RUN

    assert estimated_overhead < 0.03 * run_wall, (
        f"disabled tracer costs ~{per_call * 1e9:.0f}ns/call; "
        f"{SPAN_SITES_PER_RUN} sites -> {estimated_overhead * 1e3:.3f}ms "
        f"vs 3% of run wall {run_wall * 1e3:.1f}ms"
    )

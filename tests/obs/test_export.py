"""Export layer: JSONL roundtrip, Chrome events, summaries, profiles."""

import io
import json

from repro.obs import (
    Span,
    chrome_trace,
    hot_modules,
    new_span_id,
    read_trace,
    render_profile,
    render_summary,
    summarize_spans,
    write_chrome_trace,
    write_trace,
)


def _spans():
    return [
        Span(
            name="stage:a",
            span_id=new_span_id(),
            start=100.0,
            wall_s=1.5,
            cpu_s=1.2,
            attrs={"k": "v"},
            pid=7,
            thread_id=1,
        ),
        Span(
            name="member",
            span_id=new_span_id(),
            parent_id="x-1",
            start=100.5,
            wall_s=0.5,
            pid=7,
            thread_id=2,
        ),
        Span(
            name="member",
            span_id=new_span_id(),
            parent_id="x-1",
            start=101.0,
            wall_s=2.0,
            pid=8,
            thread_id=3,
        ),
    ]


def test_jsonl_roundtrip_via_path(tmp_path):
    path = tmp_path / "t.jsonl"
    spans = _spans()
    assert write_trace(spans, str(path)) == 3
    back = read_trace(str(path))
    assert [s.span_id for s in back] == [s.span_id for s in spans]
    assert back[0].attrs == {"k": "v"}


def test_jsonl_write_appends(tmp_path):
    path = tmp_path / "t.jsonl"
    spans = _spans()
    write_trace(spans[:1], str(path))
    write_trace(spans[1:], str(path))
    assert len(read_trace(str(path))) == 3


def test_jsonl_roundtrip_via_file_object():
    buf = io.StringIO()
    write_trace(_spans(), buf)
    buf.seek(0)
    assert len(read_trace(buf)) == 3


def test_every_jsonl_line_is_valid_json(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace(_spans(), str(path))
    for line in path.read_text().splitlines():
        doc = json.loads(line)
        assert {"name", "span_id", "wall_s", "attrs"} <= set(doc)


def test_chrome_trace_events():
    events = chrome_trace(_spans())
    assert all(e["ph"] == "X" for e in events)
    first = events[0]
    assert first["ts"] == 100.0 * 1e6
    assert first["dur"] == 1.5 * 1e6
    assert first["pid"] == 7
    assert first["tid"] == 1
    assert first["args"]["k"] == "v"
    assert first["cat"] == "stage"
    assert first["args"]["span_id"]


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "t.chrome.json"
    assert write_chrome_trace(_spans(), str(path)) == 3
    events = json.loads(path.read_text())
    assert len(events) == 3


def test_summarize_spans_aggregates_and_sorts():
    rows = summarize_spans(_spans())
    assert [r["name"] for r in rows] == ["member", "stage:a"]
    member = rows[0]
    assert member["count"] == 2
    assert member["wall_s"] == 2.5
    assert member["max_s"] == 2.0


def test_render_summary_is_markdown_with_top():
    text = render_summary(_spans(), top=1)
    assert "| span |" in text
    assert "member" in text
    assert "stage:a" not in text
    assert "spans: 3" in text


def test_hot_modules_apportions_wall_by_statement_share():
    rows = hot_modules(
        {"a.F90": 75, "b.F90": 25},
        wall_s=4.0,
        module_names={"a.F90": "mod_a"},
    )
    assert rows[0]["module"] == "mod_a"
    assert rows[0]["share"] == 0.75
    assert rows[0]["est_wall_s"] == 3.0
    assert rows[1]["module"] == "b.F90"  # falls back to the file name
    assert rows[1]["est_wall_s"] == 1.0


def test_hot_modules_top_and_empty():
    rows = hot_modules({f"f{i}": i + 1 for i in range(20)}, 1.0, top=5)
    assert len(rows) == 5
    assert hot_modules({}, 1.0) == []


def test_render_profile_is_markdown():
    text = render_profile(hot_modules({"a.F90": 10}, 2.0))
    assert "| module |" in text
    assert "a.F90" in text
    assert "100.0%" in text

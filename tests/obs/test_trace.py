"""Tracer semantics: nesting, thread-locality, dedup, root attrs."""

import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_span_id,
    round_wall,
    runtime_info,
)


def test_disabled_tracer_returns_the_shared_null_handle():
    tracer = Tracer()
    assert tracer.span("anything") is NULL_SPAN
    assert tracer.span("other", {"k": 1}) is NULL_SPAN
    with tracer.span("region") as span:
        assert span is NULL_SPAN
        span.annotate(ignored=True)  # no-op, no error
    assert len(tracer) == 0


def test_span_records_name_timing_and_attrs():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("work", {"k": "v"}) as span:
        span.annotate(extra=1)
    (finished,) = [s for s in tracer.finished() if s.name == "work"]
    assert finished.span_id == span.span_id
    assert finished.attrs["k"] == "v"
    assert finished.attrs["extra"] == 1
    assert finished.wall_s >= 0.0
    assert finished.pid > 0
    assert finished.thread_id == threading.get_ident()


def test_nested_spans_get_parent_ids_from_the_stack():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        assert tracer.current_id() == outer.span_id
    by_name = {s.name: s for s in tracer.finished()}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].parent_id is None


def test_root_spans_carry_runtime_info():
    tracer = Tracer()
    tracer.enable(experiment="x")
    with tracer.span("root"):
        pass
    (root,) = tracer.finished()
    info = runtime_info()
    assert root.attrs["experiment"] == "x"
    for key in ("python", "numpy", "cpus", "platform", "repro"):
        assert root.attrs[key] == info[key]


def test_child_spans_do_not_carry_runtime_info():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    child = next(s for s in tracer.finished() if s.name == "child")
    assert "python" not in child.attrs


def test_lazy_attrs_not_evaluated_when_disabled():
    tracer = Tracer()
    calls = []

    def attrs():
        calls.append(1)
        return {"k": 1}

    tracer.span("cold", attrs)
    assert calls == []
    tracer.enable()
    with tracer.span("hot", attrs):
        pass
    assert calls == [1]


def test_exception_annotates_and_propagates():
    tracer = Tracer()
    tracer.enable()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("x")
    (span,) = tracer.finished()
    assert span.attrs["error"] == "ValueError"


def test_thread_local_stacks_do_not_cross():
    tracer = Tracer()
    tracer.enable()
    seen = {}

    def worker():
        # a fresh thread has no enclosing span: its span becomes a root
        with tracer.span("thread-span") as s:
            seen["parent"] = s.parent_id

    with tracer.span("main-span"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["parent"] is None


def test_explicit_parent_id_overrides_the_stack():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("child", parent_id="ffff-1"):
        pass
    (span,) = tracer.finished()
    assert span.parent_id == "ffff-1"


def test_adopt_dedups_by_span_id():
    tracer = Tracer()
    tracer.enable()
    span = Span(name="w", span_id=new_span_id(), wall_s=0.5)
    assert tracer.adopt([span]) == 1
    assert tracer.adopt([span, span.to_dict()]) == 0
    assert len(tracer) == 1


def test_drain_clears_but_keeps_dedup_memory():
    tracer = Tracer()
    tracer.enable()
    span = Span(name="w", span_id=new_span_id())
    tracer.adopt([span])
    assert [s.span_id for s in tracer.drain()] == [span.span_id]
    assert len(tracer) == 0
    assert tracer.adopt([span]) == 0  # still known after the drain


def test_enable_resets_buffer_and_dedup():
    tracer = Tracer()
    tracer.enable()
    span = Span(name="w", span_id=new_span_id())
    tracer.adopt([span])
    tracer.enable()
    assert len(tracer) == 0
    assert tracer.adopt([span]) == 1


def test_measure_builds_standalone_spans():
    span, value = Span.measure(
        "unit", lambda: 42, parent_id="p-1", attrs={"k": 1}
    )
    assert value == 42
    assert span.parent_id == "p-1"
    assert span.attrs == {"k": 1}
    assert span.wall_s >= 0.0
    assert len(get_tracer()) == 0  # no tracer involved


def test_span_roundtrips_through_dict():
    span, _ = Span.measure("unit", lambda: None, attrs={"k": "v"})
    clone = Span.from_dict(span.to_dict())
    assert clone.name == span.name
    assert clone.span_id == span.span_id
    assert clone.attrs == span.attrs
    assert clone.pid == span.pid


def test_traced_decorator():
    tracer = Tracer()
    tracer.enable()

    @tracer.traced("fn", kind="demo")
    def fn(x):
        return x + 1

    assert fn(1) == 2
    (span,) = tracer.finished()
    assert span.name == "fn"
    assert span.attrs["kind"] == "demo"


def test_module_level_enable_disable_cycle():
    tracer = enable_tracing(run="t")
    assert tracer is get_tracer()
    with tracer.span("x"):
        pass
    spans = disable_tracing()
    assert [s.name for s in spans] == ["x"]
    assert not tracer.enabled
    assert tracer.span("after") is NULL_SPAN


def test_round_wall_is_the_shared_convention():
    assert round_wall(1.23456789) == 1.2346
    assert round_wall(0) == 0.0


def test_span_ids_embed_pid_and_are_unique():
    import os

    ids = {new_span_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith(f"{os.getpid():x}-") for i in ids)

"""MetricsRegistry: counters, gauges, histograms, snapshot/delta."""

import threading

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, get_metrics


def test_counters_accumulate():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("a", 2)
    m.inc("b", 0.5)
    assert m.counters() == {"a": 3, "b": 0.5}


def test_gauges_overwrite():
    m = MetricsRegistry()
    m.gauge("g", 1.0)
    m.gauge("g", 7.0)
    assert m.snapshot()["gauges"] == {"g": 7.0}


def test_histogram_buckets_and_summary():
    m = MetricsRegistry()
    for v in (0.0005, 0.002, 0.002, 5.0, 100.0):
        m.observe("h", v)
    h = m.snapshot()["histograms"]["h"]
    assert h["buckets"] == list(DEFAULT_BUCKETS)
    assert h["count"] == 5
    assert h["sum"] == 0.0005 + 0.002 + 0.002 + 5.0 + 100.0
    assert h["counts"][0] == 1  # <= 0.001
    assert h["counts"][1] == 2  # <= 0.003
    assert h["counts"][-1] == 1  # overflow bucket
    assert sum(h["counts"]) == 5


def test_counter_delta_reports_only_movement():
    m = MetricsRegistry()
    m.inc("a", 5)
    before = m.snapshot()
    m.inc("a", 2)
    m.inc("b")
    assert m.counter_delta(before) == {"a": 2, "b": 1}
    # a flat counters() mapping works as the baseline too
    flat = m.counters()
    m.inc("a")
    assert m.counter_delta(flat) == {"a": 1}


def test_counter_delta_without_baseline_is_everything_nonzero():
    m = MetricsRegistry()
    m.inc("a", 3)
    m.inc("z", 0)
    assert m.counter_delta() == {"a": 3}
    assert m.counter_delta(None) == {"a": 3}


def test_reset_clears_everything():
    m = MetricsRegistry()
    m.inc("a")
    m.gauge("g", 1)
    m.observe("h", 1.0)
    m.reset()
    snap = m.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_snapshot_is_json_safe():
    import json

    m = MetricsRegistry()
    m.inc("a")
    m.gauge("g", 2.5)
    m.observe("h", 0.01)
    json.dumps(m.snapshot())  # must not raise


def test_concurrent_increments_do_not_lose_counts():
    m = MetricsRegistry()

    def work():
        for _ in range(1000):
            m.inc("c")

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.counters()["c"] == 8000


def test_global_registry_is_a_singleton():
    assert get_metrics() is get_metrics()

"""Cross-process span collection and resume semantics.

The contract: every ensemble member produces exactly one
``ensemble.member`` span in the *parent* trace, with a stable parent id
(the enclosing ``ensemble.generate`` span), whether it ran inline, in a
pool thread, or in a ``fork``/``spawn`` worker process — and a
killed-mid-stage resume never duplicates member spans, because the
resumed stages are cache hits that run no members at all.
"""

import os

import pytest

from repro.ensemble import EnsembleSpec, generate_ensemble
from repro.ensemble.backends import ProcessBackend
from repro.obs import disable_tracing, enable_tracing
from repro.pipeline import StageError

SPEC = EnsembleSpec(n_members=3, nsteps=1)


def member_spans(spans):
    return [s for s in spans if s.name == "ensemble.member"]


def generate_span(spans):
    (span,) = [s for s in spans if s.name == "ensemble.generate"]
    return span


@pytest.mark.parametrize("backend", ["serial", "thread", "vectorized"])
def test_in_process_backends_one_span_per_member(backend):
    enable_tracing()
    generate_ensemble(SPEC, backend=backend)
    spans = disable_tracing()
    members = member_spans(spans)
    assert len(members) == SPEC.n_members
    parent_ids = {s.parent_id for s in members}
    if backend == "vectorized":
        # synthetic member spans hang off the batch span, which hangs off
        # the generate span; each is flagged as an amortized estimate
        (batch,) = [s for s in spans if s.name == "ensemble.batch"]
        assert parent_ids == {batch.span_id}
        assert batch.parent_id == generate_span(spans).span_id
        assert all(s.attrs.get("estimated") for s in members)
    else:
        assert parent_ids == {generate_span(spans).span_id}
    # exactly once: all span ids distinct
    assert len({s.span_id for s in members}) == SPEC.n_members


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_process_workers_ship_spans_exactly_once(start_method):
    import multiprocessing

    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    enable_tracing()
    generate_ensemble(
        SPEC,
        backend=ProcessBackend(max_workers=2, mp_context=start_method),
    )
    spans = disable_tracing()
    members = member_spans(spans)
    assert len(members) == SPEC.n_members
    assert len({s.span_id for s in members}) == SPEC.n_members
    # stable parent: every worker span nests under the one generate span
    assert {s.parent_id for s in members} == {generate_span(spans).span_id}
    # the spans really were produced in worker processes
    assert all(s.pid != os.getpid() for s in members)
    # worker pids are embedded in the span ids, so ids can never collide
    # with the parent's even though each process counts from 1
    for span in members:
        assert span.span_id.startswith(f"{span.pid:x}-")


def killed_pipeline(pipeline, kill_at):
    """The same DAG with ``kill_at``'s function replaced by a bomb.

    Mirrors tests/pipeline/test_resume.py: stage keys derive from
    name/params/inputs — not the function — so the store written by the
    crashed run is exactly the store the healthy pipeline resumes from.
    """
    import dataclasses

    from repro.pipeline import Pipeline

    def boom(ctx, **kwargs):
        raise RuntimeError("simulated crash")

    stages = [
        dataclasses.replace(s, func=boom) if s.name == kill_at else s
        for s in pipeline.stages
    ]
    return Pipeline(stages, store_dir=pipeline.store_dir)


def test_killed_mid_stage_resume_never_duplicates_spans(tmp_path):
    from repro.experiments import get_experiment
    from repro.pipeline import root_cause_pipeline
    from repro.refine import RefinementConfig

    experiment = get_experiment("wsubbug").with_(
        members=4, nsteps=1, refine=RefinementConfig(members=3)
    )
    healthy = root_cause_pipeline(
        experiment, store_dir=tmp_path / "store", backend="serial"
    )

    enable_tracing()
    with pytest.raises(StageError):
        killed_pipeline(healthy, "ect").run()
    crashed_spans = disable_tracing()
    crashed_members = member_spans(crashed_spans)
    assert len(crashed_members) == 4  # accepted ensemble ran pre-crash

    enable_tracing()
    resumed = healthy.run()
    resumed_spans = disable_tracing()

    # the resumed run serves the accepted ensemble from cache: none of the
    # 4 members re-runs, so the only member spans that may appear belong
    # to the (smaller) refinement ensemble
    assert resumed.record("control_ensemble").status == "hit"
    assert len(member_spans(resumed_spans)) <= 3
    # every stage still traced exactly once on the resume pass
    stage_names = [
        s.name for s in resumed_spans if s.name.startswith("stage:")
    ]
    assert sorted(stage_names) == sorted(
        f"stage:{r.name}" for r in resumed.records
    )
    # and no span id is shared across the two passes
    crashed_ids = {s.span_id for s in crashed_spans}
    resumed_ids = {s.span_id for s in resumed_spans}
    assert not (crashed_ids & resumed_ids)

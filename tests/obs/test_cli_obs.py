"""CLI observability surface: --version, --trace, --profile, trace cmd."""

import io
import json

import pytest

from repro.cli import main

RUN_ARGS = [
    "--members", "6",
    "--nsteps", "1",
    "--refine-members", "4",
    "--backend", "serial",
]


def invoke(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    from repro import __version__

    assert f"repro {__version__}" in capsys.readouterr().out


class TestTracedRun:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("obs-cli-store"))

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("obs-cli-trace") / "t.jsonl")

    @pytest.fixture(scope="class")
    def traced_run(self, store, trace_path):
        return invoke(
            [
                "run", "wsubbug",
                "--store", store,
                "--trace", trace_path,
                "--profile",
                "--json",
                *RUN_ARGS,
            ]
        )

    def test_traced_run_exits_zero_with_metrics_and_profile(
        self, traced_run
    ):
        code, text = traced_run
        assert code == 0
        doc = json.loads(text)
        assert doc["report"]["localized"] is True
        # satellite: per-stage walls + cache counters ride along in --json
        assert set(doc["wall_by_stage"]) == {
            s["name"] for s in doc["stages"]
        }
        assert doc["counters"]["store_misses"] > 0
        assert doc["metrics"]["ensemble.members_run"] == 6
        assert doc["metrics"]["interpreter.statements"] > 0
        # --profile attaches the hottest-modules table rows
        assert doc["profile"], "profile rows missing"
        assert {"module", "share", "est_wall_s"} <= set(doc["profile"][0])

    def test_trace_file_covers_stages_and_members(
        self, traced_run, trace_path
    ):
        from repro.obs import read_trace

        spans = read_trace(trace_path)
        names = [s.name for s in spans]
        stage_names = {n for n in names if n.startswith("stage:")}
        doc = json.loads(traced_run[1])
        assert stage_names == {
            f"stage:{s['name']}" for s in doc["stages"]
        }
        assert names.count("ensemble.member") >= 6
        # stage records link back into the trace by span id
        trace_ids = {s.span_id for s in spans}
        for stage in doc["stages"]:
            assert stage["span_id"] in trace_ids
        # exactly one root span, stamped with runtime info
        roots = [s for s in spans if not s.parent_id]
        assert [s.name for s in roots] == ["pipeline.run"]
        assert roots[0].attrs["experiment"] == "wsubbug"
        assert "python" in roots[0].attrs

    def test_trace_summarize_renders_markdown(self, traced_run, trace_path):
        code, text = invoke(["trace", "summarize", trace_path, "--top", "5"])
        assert code == 0
        assert "| span |" in text
        assert "stage:" in text

    def test_trace_summarize_json(self, traced_run, trace_path):
        code, text = invoke(["trace", "summarize", trace_path, "--json"])
        assert code == 0
        rows = json.loads(text)
        assert any(r["name"] == "ensemble.member" for r in rows)

    def test_trace_chrome_conversion(
        self, traced_run, trace_path, tmp_path
    ):
        out_path = str(tmp_path / "t.chrome.json")
        code, _ = invoke(
            ["trace", "chrome", trace_path, "--out", out_path]
        )
        assert code == 0
        events = json.loads(open(out_path).read())
        assert events and all(e["ph"] == "X" for e in events)

    def test_markdown_run_prints_profile_tables(self, store):
        code, text = invoke(
            ["run", "wsubbug", "--store", store, "--profile", *RUN_ARGS]
        )
        assert code == 0
        assert "## Profile: hottest modules" in text
        assert "| module |" in text
        assert "## Profile: hottest spans" in text

    def test_untraced_run_leaves_tracer_disabled(self, store):
        from repro.obs import get_tracer

        code, _ = invoke(
            ["run", "wsubbug", "--store", store, "--json", *RUN_ARGS]
        )
        assert code == 0
        assert not get_tracer().enabled
        assert len(get_tracer()) == 0


def test_trace_summarize_missing_file_is_usage_error(tmp_path, capsys):
    code = main(
        ["trace", "summarize", str(tmp_path / "nope.jsonl")],
        out=io.StringIO(),
    )
    assert code == 2

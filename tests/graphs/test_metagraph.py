"""End-to-end and unit tests for the metagraph subsystem."""

import pytest

from repro.fortran import parse_source
from repro.graphs import MetaGraph, MetaGraphBuilder, build_metagraph
from repro.model import ModelConfig, build_model_source

SIMPLE_PAIR = {
    "alpha.F90": """
module alpha
  implicit none
  public
  real :: shared = 1.0
contains
  subroutine produce(x)
    real, intent(out) :: x
    x = shared * 2.0
  end subroutine produce
end module alpha
""",
    "beta.F90": """
module beta
  use alpha, only: produce, renamed => shared
  implicit none
contains
  subroutine consume(result)
    real, intent(out) :: result
    real :: tmp
    call produce(tmp)
    result = tmp + renamed
  end subroutine consume
end module beta
""",
}


@pytest.fixture(scope="module")
def fc5_graph():
    return build_metagraph(build_model_source(ModelConfig()))


class TestSmallGraphs:
    def test_assignment_edges(self):
        g = build_metagraph(SIMPLE_PAIR)
        # x = shared * 2.0  inside produce
        assert ("alpha", "", "shared") in g
        assert ("alpha", "produce", "x") in g
        assert ("alpha", "", "shared") in g.predecessors(("alpha", "produce", "x"))

    def test_call_binding_intent_out_flows_back_to_actual(self):
        g = build_metagraph(SIMPLE_PAIR)
        # call produce(tmp): dummy x is intent(out), so x -> tmp
        assert ("beta", "consume", "tmp") in g.successors(("alpha", "produce", "x"))

    def test_use_rename_resolves_to_defining_module(self):
        g = build_metagraph(SIMPLE_PAIR)
        # "renamed" in beta is alpha's "shared": no separate beta node
        assert ("beta", "", "renamed") not in g
        assert ("alpha", "", "shared") in g.predecessors(("beta", "consume", "result"))

    def test_cross_module_edges_counted(self):
        g = build_metagraph(SIMPLE_PAIR)
        assert g.cross_module_edges() > 0

    def test_intermediate_component_subscripts_are_reads(self):
        g = build_metagraph({
            "chain.F90": """
module chain
  implicit none
  type inner
    real :: c(4)
  end type inner
  type outer
    type(inner) :: b(4)
  end type outer
  type(outer) :: a
contains
  subroutine s(x, i, j)
    real, intent(out) :: x
    integer, intent(in) :: i, j
    x = a%b(i)%c(j)
  end subroutine s
end module chain
"""
        })
        preds = g.predecessors(("chain", "s", "x"))
        assert ("chain", "s", "i") in preds  # intermediate subscript
        assert ("chain", "s", "j") in preds  # trailing subscript

    def test_interface_cycle_does_not_recurse_forever(self):
        g_src = {
            "cyc.F90": """
module cyc
  implicit none
  interface ping
    module procedure pong
  end interface
  interface pong
    module procedure ping
  end interface
contains
  subroutine run()
    call ping(1)
  end subroutine run
end module cyc
"""
        }
        builder = MetaGraphBuilder(
            {n: parse_source(t, filename=n) for n, t in g_src.items()}
        )
        builder.build()  # must terminate, recording the unresolved call
        assert [(m, n) for m, n, _ in builder.unresolved_calls] == [("cyc", "ping")]

    def test_mapping_of_text_and_model_source_agree(self):
        src = build_model_source(ModelConfig())
        from_model = build_metagraph(src)
        from_text = build_metagraph(src.compiled_sources())
        assert from_model.node_count == from_text.node_count
        assert from_model.edge_count == from_text.edge_count

    def test_rejects_unknown_input(self):
        with pytest.raises(TypeError, match="ModelSource or a mapping"):
            build_metagraph(42)


class TestGraphStructure:
    def test_add_edge_requires_nodes(self):
        g = MetaGraph()
        g.add_node("m", "", "a")
        with pytest.raises(KeyError):
            g.add_edge(("m", "", "a"), ("m", "", "missing"))

    def test_self_edges_are_dropped(self):
        g = MetaGraph()
        key = g.add_node("m", "s", "x").key
        g.add_edge(key, key)
        assert g.edge_count == 0

    def test_degree_queries_match_edges(self):
        g = MetaGraph()
        a = g.add_node("m", "", "a").key
        b = g.add_node("m", "", "b").key
        c = g.add_node("m", "", "c").key
        g.add_edge(a, c, line=3)
        g.add_edge(b, c, line=4)
        assert g.in_degree(c) == 2 and g.out_degree(a) == 1
        assert g.predecessors(c) == {a, b}
        assert g.edge_lines(a, c) == {3}

    def test_reachable_from(self):
        g = MetaGraph()
        a = g.add_node("m", "", "a").key
        b = g.add_node("m", "", "b").key
        c = g.add_node("m", "", "c").key
        g.add_edge(a, b)
        g.add_edge(b, c)
        assert g.reachable_from([a]) == {a, b, c}
        assert g.reachable_from([c], reverse=True) == {a, b, c}


class TestFullCompsetGraph:
    """The acceptance path: the whole FC5 tree compiles into one metagraph."""

    def test_covers_every_compiled_module(self, fc5_graph):
        src = build_model_source(ModelConfig())
        expected = set(src.modules())
        assert fc5_graph.modules() == expected
        assert len(expected) >= 30  # files from all eleven subsystem providers

    def test_is_substantial_and_cross_module(self, fc5_graph):
        stats = fc5_graph.stats()
        assert stats.node_count > 300
        assert stats.edge_count > 500
        assert stats.cross_module_edges > 0
        assert stats.max_in_degree >= stats.mean_in_degree
        assert stats.mean_out_degree == pytest.approx(
            stats.edge_count / stats.node_count
        )

    def test_no_unresolved_calls_in_clean_model(self):
        src = build_model_source(ModelConfig())
        builder = MetaGraphBuilder(src.parse())
        builder.build()
        assert builder.unresolved_calls == []

    def test_physics_chain_reaches_output(self, fc5_graph):
        # paper-style query: the Goff-Gratch SVP result must feed, through
        # qsat/cloud/microphysics call chains, the precipitation the coupler
        # exports — that is the path the root-cause slice walks backward.
        es = ("wv_saturation", "goffgratch_svp", "es")
        precl = fc5_graph.find("precl_total")
        assert precl, "driver export variable missing from graph"
        forward = fc5_graph.reachable_from([es])
        assert precl[0] in forward

    def test_dummy_binding_crosses_module_boundary(self, fc5_graph):
        # tphysbc passes its ptend dummy into micro_mg_tend's ptend dummy
        micro = ("micro_mg", "micro_mg_tend", "ptend")
        phys = ("physpkg", "tphysbc", "ptend")
        assert phys in fc5_graph.predecessors(micro)

    def test_component_nodes_canonicalize(self, fc5_graph):
        keys = fc5_graph.find("omega")
        assert any("%" in key[2] for key in keys)
        node = fc5_graph.nodes[next(k for k in keys if "%" in k[2])]
        assert node.canonical_name == "omega"

    def test_lines_recorded_for_nodes(self, fc5_graph):
        node = fc5_graph.nodes[("micro_mg", "micro_mg_tend", "prect")]
        assert node.lines and all(line > 0 for line in node.lines)

    def test_patched_model_builds_same_shape(self):
        # a bug patch changes values, not (for these experiments) structure
        clean = build_metagraph(build_model_source(ModelConfig()))
        patched = build_metagraph(
            build_model_source(ModelConfig(patches=("rand-mt",)))
        )
        assert patched.node_count == clean.node_count
        # wsubbug *removes* a read (tkebg) so shape may differ there; rand-mt
        # only flips a sign, so the edge sets agree exactly
        assert set(patched.edges()) == set(clean.edges())


def test_subprogram_level_use_resolves_cross_module():
    # regression: `use` inside a subroutine body used to be dropped,
    # leaving a phantom implicit-kind local instead of the module variable
    from repro.fortran import parse_source
    from repro.graphs import build_metagraph

    sources = {
        "b.F90": """
module b
  implicit none
  real :: x = 1.0
end module b
""",
        "a.F90": """
module a
  implicit none
contains
  subroutine s(y)
    use b, only: x
    real, intent(out) :: y
    y = x + 1.0
  end subroutine s
end module a
""",
    }
    asts = {name: parse_source(text, filename=name) for name, text in sources.items()}
    graph = build_metagraph(asts)
    assert ("b", "", "x") in graph
    assert ("a", "s", "y") in graph.successors(("b", "", "x"))

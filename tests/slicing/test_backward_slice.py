"""Backward slicing: unit semantics on a toy graph, seeds, coverage filter."""

import pytest

from repro.graphs import MetaGraph, build_metagraph
from repro.model import ModelConfig, build_model_source
from repro.model.registry import iter_output_fields
from repro.runtime import CoverageTrace
from repro.slicing import (
    backward_slice,
    module_file_map,
    output_field_seeds,
)


def toy_graph():
    """a(mod_a) -> b(mod_b) -> c(mod_b); d(mod_d) isolated."""
    g = MetaGraph()
    a = g.add_node("mod_a", "", "a", line=1)
    b = g.add_node("mod_b", "run", "b", line=2)
    c = g.add_node("mod_b", "run", "c", line=3)
    g.add_node("mod_d", "", "d", line=9)
    g.add_edge(a.key, b.key, line=2)
    g.add_edge(b.key, c.key, line=3)
    return g


class TestBackwardSliceUnit:
    def test_reverse_closure_with_depths(self):
        g = toy_graph()
        sl = backward_slice(g, [("mod_b", "run", "c")])
        assert sl.nodes == {
            ("mod_b", "run", "c"),
            ("mod_b", "run", "b"),
            ("mod_a", "", "a"),
        }
        assert sl.depths[("mod_b", "run", "c")] == 0
        assert sl.depths[("mod_b", "run", "b")] == 1
        assert sl.depths[("mod_a", "", "a")] == 2
        assert sl.modules() == {"mod_a", "mod_b"}
        assert sl.module_depths() == {"mod_b": 0, "mod_a": 2}

    def test_string_seed_resolves_via_find(self):
        g = toy_graph()
        sl = backward_slice(g, "c")
        assert ("mod_a", "", "a") in sl

    def test_unknown_seeds_give_empty_slice(self):
        g = toy_graph()
        sl = backward_slice(g, [("nope", "", "x")])
        assert len(sl) == 0
        assert sl.modules() == frozenset()

    def test_coverage_filter_drops_unexecuted_modules_and_blocks_flow(self):
        g = toy_graph()
        files = {"mod_a": "a.F90", "mod_b": "b.F90", "mod_d": "d.F90"}
        cov = CoverageTrace()
        cov.record("b.F90", 2)
        cov.record("b.F90", 3)
        # a.F90 never executed: node a must be rejected, not traversed
        sl = backward_slice(
            g, [("mod_b", "run", "c")], coverage=cov, module_files=files
        )
        assert sl.nodes == {("mod_b", "run", "c"), ("mod_b", "run", "b")}
        assert ("mod_a", "", "a") in sl.unexecuted

    def test_line_level_filter_rejects_unexecuted_lines(self):
        g = toy_graph()
        files = {"mod_a": "a.F90", "mod_b": "b.F90"}
        cov = CoverageTrace()
        cov.record("b.F90", 3)  # only node c's line executed
        sl = backward_slice(
            g, [("mod_b", "run", "c")], coverage=cov, module_files=files
        )
        assert sl.nodes == {("mod_b", "run", "c")}
        assert ("mod_b", "run", "b") in sl.unexecuted


@pytest.fixture(scope="module")
def control_source():
    return build_model_source(ModelConfig())


@pytest.fixture(scope="module")
def control_graph(control_source):
    return build_metagraph(control_source)


class TestSeeds:
    def test_every_declared_output_field_has_seed_nodes(
        self, control_source, control_graph
    ):
        seeds = output_field_seeds(control_source, control_graph)
        declared = [f.name for f in iter_output_fields(control_source.compset)]
        missing = [name for name in declared if not seeds.get(name)]
        assert not missing, f"fields without seeds: {missing}"

    def test_seed_nodes_point_at_the_writing_module(
        self, control_source, control_graph
    ):
        seeds = output_field_seeds(control_source, control_graph)
        # CLDTOT is written from `cltot` inside cloud_fraction's cldfrc
        assert any(k[0] == "cloud_fraction" for k in seeds["CLDTOT"])
        # WSUB straight from microp_aero
        assert any(k[0] == "microp_aero" for k in seeds["WSUB"])

    def test_use_associated_payloads_fall_back_to_global_match(
        self, control_source, control_graph
    ):
        seeds = output_field_seeds(control_source, control_graph)
        # RELHUM's payload is the physics buffer's field, not a local
        assert any(k[0] == "physics_buffer" for k in seeds["RELHUM"])

    def test_module_file_map_covers_compiled_tree(self, control_source):
        mapping = module_file_map(control_source)
        assert mapping["micro_mg"] == "micro_mg.F90"
        assert set(mapping.values()) <= set(control_source.compiled_files)

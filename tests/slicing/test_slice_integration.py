"""Acceptance: the hybrid slice localizes every registered bug patch.

For each of the five registered patches: generate experimental runs of the
patched model, let ECT flag them, slice backward from the most-affected
output variables intersected with the patched build's executed-line
coverage — and the resulting ranked module slice must contain the patched
module while covering less than half of the graph's modules.
"""

import pytest

from repro.ect import UltraFastECT
from repro.ensemble import EnsembleSpec
from repro.model import ModelConfig, build_model_source, get_patch, list_patches
from repro.runtime import RunConfig, run_model
from repro.graphs import build_metagraph
from repro.slicing import module_file_map, slice_failing_runs

SPEC = EnsembleSpec(n_members=30, collect_coverage=False)


@pytest.fixture(scope="module")
def accepted_ensemble(accepted_ensemble_30):
    assert accepted_ensemble_30.spec == SPEC  # shared session fixture
    return accepted_ensemble_30


@pytest.fixture(scope="module")
def ect(accepted_ensemble):
    return UltraFastECT(accepted_ensemble)


@pytest.fixture(scope="module")
def control_source():
    return build_model_source(ModelConfig())


@pytest.fixture(scope="module")
def control_graph(control_source):
    return build_metagraph(control_source)


@pytest.fixture(scope="module")
def file_modules(control_source):
    out = {}
    for module, filename in module_file_map(control_source).items():
        out.setdefault(filename, set()).add(module)
    return out


def patched_slice(patch, accepted_ensemble, ect, control_source, control_graph):
    model = ModelConfig(patches=(patch,))
    patched_source = build_model_source(model)
    runs = [
        run_model(SPEC.experimental_config(i, model=model), source=patched_source)
        for i in range(3)
    ]
    verdict = ect.test(runs)
    assert not verdict.consistent, f"{patch} must fail ECT before slicing"
    # the paper's coverage step: instrument the *failing* configuration
    coverage = run_model(
        RunConfig(model=model, nsteps=1), source=patched_source
    ).coverage
    return slice_failing_runs(
        accepted_ensemble,
        runs,
        graph=control_graph,
        source=control_source,
        coverage=coverage,
        ect_result=verdict,
    )


@pytest.mark.parametrize("patch", sorted(list_patches()))
def test_slice_contains_patched_module_under_half_the_code(
    patch, accepted_ensemble, ect, control_source, control_graph, file_modules
):
    sl = patched_slice(
        patch, accepted_ensemble, ect, control_source, control_graph
    )
    patched_file = get_patch(patch).filename
    patched_modules = file_modules[patched_file]
    assert any(m in sl for m in patched_modules), (
        f"{patch}: none of {sorted(patched_modules)} in slice "
        f"{sl.summary()}"
    )
    assert sl.fraction < 0.5, f"{patch}: slice too broad: {sl.summary()}"
    assert len(sl.modules) < 0.5 * sl.total_modules


def test_slice_is_ranked_and_reports_evidence(
    accepted_ensemble, ect, control_source, control_graph
):
    sl = patched_slice(
        "wsubbug", accepted_ensemble, ect, control_source, control_graph
    )
    # ranking is sorted by descending score
    scores = [score for _, score in sl.ranking]
    assert scores == sorted(scores, reverse=True)
    # the most anomalous variable (bit-invariant violation) leads the
    # evidence, and its slice descends to (module, scope) granularity
    assert "WSUB" in sl.variable_weights
    assert ("microp_aero", "microp_aero_run") in sl.slices["WSUB"].scopes()
    assert sl.summary().startswith("RankedSlice(")


def test_explicit_evidence_override_replaces_the_topk_heuristic(
    accepted_ensemble, ect, control_source, control_graph
):
    """The refinement and selection stages inject their own
    affected-variable set: the ``evidence=`` override must slice from
    exactly those fields (with their own evidence weights), ignoring the
    internal top-k selection and the ect_result filter."""
    from repro.selection import EvidenceSelection

    model = ModelConfig(patches=("wsubbug",))
    patched_source = build_model_source(model)
    runs = [
        run_model(SPEC.experimental_config(i, model=model), source=patched_source)
        for i in range(3)
    ]
    coverage = run_model(
        RunConfig(model=model, nsteps=1), source=patched_source
    ).coverage
    kwargs = dict(
        graph=control_graph, source=control_source, coverage=coverage
    )
    injected = slice_failing_runs(
        accepted_ensemble, runs,
        evidence=EvidenceSelection(variables=("WSUB", "WSUB@first", "PRECT")),
        **kwargs,
    )
    # only the requested fields carry evidence (@first folds into its base)
    assert set(injected.variable_weights) == {"WSUB", "PRECT"}
    assert set(injected.slices) <= {"WSUB", "PRECT"}
    assert "microp_aero" in injected
    # and the override genuinely changes the outcome vs. the heuristic
    default = slice_failing_runs(accepted_ensemble, runs, **kwargs)
    assert set(default.variable_weights) != set(injected.variable_weights)
    # unknown / non-deviating fields contribute nothing rather than fail
    silent = slice_failing_runs(
        accepted_ensemble, runs,
        evidence=EvidenceSelection(variables=("NOT_A_FIELD",)),
        **kwargs,
    )
    assert silent.variable_weights == {}
    assert silent.modules == []


def test_variables_kwarg_is_deprecated_but_bit_identical(
    accepted_ensemble, ect, control_source, control_graph
):
    """``variables=`` still works — warning, same bits — and combining it
    with its replacement is a usage error."""
    from repro.selection import EvidenceSelection

    model = ModelConfig(patches=("wsubbug",))
    patched_source = build_model_source(model)
    runs = [
        run_model(SPEC.experimental_config(i, model=model), source=patched_source)
        for i in range(3)
    ]
    coverage = run_model(
        RunConfig(model=model, nsteps=1), source=patched_source
    ).coverage
    kwargs = dict(
        graph=control_graph, source=control_source, coverage=coverage
    )
    evidence = EvidenceSelection(variables=("WSUB", "PRECT"))
    with pytest.warns(DeprecationWarning, match="evidence=EvidenceSelection"):
        legacy = slice_failing_runs(
            accepted_ensemble, runs, variables=["WSUB", "PRECT"], **kwargs
        )
    modern = slice_failing_runs(
        accepted_ensemble, runs, evidence=evidence, **kwargs
    )
    # bit-identical outcome: weights, ranking and slice all match exactly
    assert legacy.variable_weights == modern.variable_weights
    assert legacy.ranking == modern.ranking
    assert legacy.modules == modern.modules
    with pytest.raises(ValueError, match="not both"):
        slice_failing_runs(
            accepted_ensemble,
            runs,
            variables=["WSUB"],
            evidence=evidence,
            **kwargs,
        )


def test_never_executed_modules_are_sliced_away(
    accepted_ensemble, ect, control_source, control_graph
):
    """Compiled-but-never-executed files are outside any coverage-filtered
    slice — the paper's 820 -> ~230 reduction in miniature."""
    sl = patched_slice(
        "goffgratch", accepted_ensemble, ect, control_source, control_graph
    )
    for per_var in sl.slices.values():
        assert "seasalt_optics" not in {k[0] for k in per_var.depths}
        assert "restart_mod" not in {k[0] for k in per_var.depths}
    assert "seasalt_optics" not in sl.modules
    assert "restart_mod" not in sl.modules

"""The consolidated ``repro.errors`` hierarchy and the CLI exit codes.

Contract: every intentional error derives from :class:`ReproError`, each
concrete class keeps its historical import path and builtin bases, and the
CLI maps usage errors to exit 2 vs. "ran but did not localize" to exit 1.
"""

import io

import pytest

import repro.errors as errors_module
from repro.errors import ReproError, _ERROR_EXPORTS


class TestHierarchy:
    @pytest.mark.parametrize("name", sorted(_ERROR_EXPORTS))
    def test_every_export_is_a_repro_error(self, name):
        cls = getattr(errors_module, name)
        assert isinstance(cls, type)
        assert issubclass(cls, ReproError)

    def test_all_covers_every_lazy_export(self):
        assert set(_ERROR_EXPORTS) | {"ReproError"} == set(
            errors_module.__all__
        )

    def test_unknown_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            errors_module.definitely_not_an_error

    def test_historical_import_paths_are_the_same_objects(self):
        from repro.ensemble.backends import UnknownBackendError
        from repro.model.patches import UnknownPatchError
        from repro.pipeline.store import StoreError
        from repro.selection import UnknownSolverError

        assert errors_module.UnknownBackendError is UnknownBackendError
        assert errors_module.UnknownPatchError is UnknownPatchError
        assert errors_module.StoreError is StoreError
        assert errors_module.UnknownSolverError is UnknownSolverError

    def test_historical_builtin_bases_survive(self):
        # pre-consolidation except clauses keep matching
        assert issubclass(errors_module.StoreError, ValueError)
        assert issubclass(errors_module.StageError, RuntimeError)
        assert issubclass(errors_module.UnknownExperimentError, KeyError)
        assert issubclass(errors_module.UnknownBackendError, KeyError)
        assert issubclass(errors_module.UnknownSolverError, KeyError)
        assert issubclass(errors_module.ArtifactError, ValueError)
        assert issubclass(errors_module.CoverageReportError, ValueError)

    def test_one_except_catches_scattered_raisers(self):
        from repro.experiments import get_experiment
        from repro.model import get_patch
        from repro.selection import get_solver

        for trigger in (
            lambda: get_experiment("warpdrive"),
            lambda: get_patch("warpdrive"),
            lambda: get_solver("warpdrive"),
        ):
            with pytest.raises(ReproError):
                trigger()

    def test_repro_error_is_lazily_exported_from_the_package(self):
        import repro

        assert repro.ReproError is ReproError


class TestCliExitCodes:
    """Usage errors exit 2 before any work; a run that completes without
    localizing exits 1; both are distinct from success (0)."""

    def invoke(self, argv):
        from repro.cli import main

        out = io.StringIO()
        return main(argv, out=out), out.getvalue()

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["run", "warpdrive"], "warpdrive"),
            (["run", "wsubbug", "--backend", "quantum"], "quantum"),
            (["run", "wsubbug", "--solver", "simplex"], "simplex"),
            (["run", "wsubbug", "--vec-batch", "0"], "--vec-batch"),
        ],
    )
    def test_usage_errors_exit_2(self, argv, fragment, tmp_path, capsys):
        code, text = self.invoke(argv + ["--store", str(tmp_path)])
        assert code == 2
        assert text == ""
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err
        assert list(tmp_path.iterdir()) == []  # nothing ran

    def test_unknown_solver_names_the_known_ones(self, tmp_path, capsys):
        code, _ = self.invoke(
            ["run", "wsubbug", "--solver", "simplex", "--store", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "branch-and-bound" in err and "pulp" in err

    def test_not_localized_run_exits_1(self, tmp_path, monkeypatch):
        from repro.reporting.report import LocalizationReport, VerdictReport

        report = LocalizationReport(
            experiment="wsubbug",
            patch="wsubbug",
            fma=False,
            expected_modules=["microp_aero"],
            verdict=VerdictReport(consistent=True, n_runs=3, n_pcs=10),
            slice_modules=[],
            refined_modules=[],
            refine_iterations=0,
            target_modules=10,
            total_modules=40,
        )
        assert not report.localized

        class FakeResult:
            records = ()

            def __getitem__(self, name):
                assert name == "report"
                return report

        class FakeAnalysis:
            def __init__(self, *args, **kwargs):
                pass

            def run(self):
                return FakeResult()

        monkeypatch.setattr(
            "repro.pipeline.RootCauseAnalysis", FakeAnalysis
        )
        code, text = self.invoke(
            ["run", "wsubbug", "--store", str(tmp_path)]
        )
        assert code == 1
        assert "Localized: False" in text

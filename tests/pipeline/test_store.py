"""ArtifactStore: payloads, atomicity conventions, counters."""

import numpy as np
import pytest

from repro.pipeline import ArtifactStore, StoreError, json_payload, payload_json
from repro.pipeline.store import find_nonfinite


def test_round_trip_json_and_arrays(tmp_path):
    store = ArtifactStore(tmp_path)
    payload = json_payload(
        {"modules": ["a", "b"], "weight": 1.5},
        arrays={"matrix": np.arange(6.0).reshape(2, 3)},
    )
    store.save("k1", payload)
    loaded = store.load("k1")
    assert payload_json(loaded) == {"modules": ["a", "b"], "weight": 1.5}
    np.testing.assert_array_equal(loaded["matrix"], payload["matrix"])


def test_json_floats_round_trip_exactly(tmp_path):
    store = ArtifactStore(tmp_path)
    value = 0.1 + 0.2  # not representable; repr round-trips bit-exactly
    store.save("k", json_payload({"v": value}))
    assert payload_json(store.load("k"))["v"] == value


def test_miss_and_hit_counters(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load("absent") is None
    store.save("k", json_payload({}))
    assert store.load("k") is not None
    assert store.stats() == {"hits": 1, "misses": 1, "writes": 1, "entries": 1}


def test_contains(tmp_path):
    store = ArtifactStore(tmp_path)
    assert "k" not in store
    store.save("k", json_payload({}))
    assert "k" in store


def test_corrupt_entry_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("k", json_payload({"x": 1}))
    (tmp_path / "k.npz").write_bytes(b"not a zip archive")
    assert store.load("k") is None
    assert store.misses == 1


def test_truncated_entry_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("k", json_payload({"x": 1}))
    path = tmp_path / "k.npz"
    path.write_bytes(path.read_bytes()[:10])
    assert store.load("k") is None


class TestNonFinitePayloads:
    """NaN/Infinity must fail fast at save time, naming the field —
    ``json.dumps`` would otherwise emit the non-JSON token ``NaN`` that
    ``payload_json`` can never read back."""

    def test_nan_payload_raises_naming_the_field(self):
        with pytest.raises(StoreError, match=r"\$\.metrics\.rmse"):
            json_payload({"metrics": {"rmse": float("nan")}})

    def test_infinity_in_list_names_the_index(self):
        with pytest.raises(StoreError, match=r"\$\.scores\[2\]"):
            json_payload({"scores": [0.0, 1.0, float("inf")]})

    def test_finite_floats_pass(self):
        payload = json_payload({"v": 1.5e308})
        assert payload_json(payload)["v"] == 1.5e308

    def test_find_nonfinite_clean_object_is_none(self):
        assert find_nonfinite({"a": [1.0, {"b": 2.0}], "c": "NaN"}) is None

    def test_find_nonfinite_reports_first_hit(self):
        obj = {"a": float("-inf"), "b": float("nan")}
        assert find_nonfinite(obj) == "$.a"


class TestAtomicWrites:
    def test_failed_save_leaves_no_temp_file(self, tmp_path, monkeypatch):
        """A save that dies mid-write must clean up its temp file — a
        long-lived store directory must not accumulate orphans."""
        store = ArtifactStore(tmp_path)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError, match="disk full"):
            store.save("k", json_payload({"x": 1}))
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == []
        assert store.writes == 0

    def test_store_still_usable_after_failed_save(
        self, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path)
        original = np.savez_compressed

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError):
            store.save("k", json_payload({"x": 1}))
        monkeypatch.setattr(np, "savez_compressed", original)
        store.save("k", json_payload({"x": 1}))
        assert payload_json(store.load("k")) == {"x": 1}

    def test_nonfinite_payload_never_reaches_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError):
            store.save("k", json_payload({"v": float("nan")}))
        assert list(tmp_path.iterdir()) == []


def test_reserved_array_name_rejected():
    with pytest.raises(StoreError, match="reserved"):
        json_payload({}, arrays={"__json__": np.zeros(1)})


def test_payload_without_json_entry_raises():
    with pytest.raises(StoreError, match="no valid JSON"):
        payload_json({"matrix": np.zeros(1)})


def test_loaded_arrays_survive_store_deletion(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("k", json_payload({}, arrays={"a": np.ones(4)}))
    loaded = store.load("k")
    (tmp_path / "k.npz").unlink()
    np.testing.assert_array_equal(loaded["a"], np.ones(4))

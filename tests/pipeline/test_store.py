"""ArtifactStore: payloads, atomicity conventions, counters."""

import numpy as np
import pytest

from repro.pipeline import ArtifactStore, StoreError, json_payload, payload_json


def test_round_trip_json_and_arrays(tmp_path):
    store = ArtifactStore(tmp_path)
    payload = json_payload(
        {"modules": ["a", "b"], "weight": 1.5},
        arrays={"matrix": np.arange(6.0).reshape(2, 3)},
    )
    store.save("k1", payload)
    loaded = store.load("k1")
    assert payload_json(loaded) == {"modules": ["a", "b"], "weight": 1.5}
    np.testing.assert_array_equal(loaded["matrix"], payload["matrix"])


def test_json_floats_round_trip_exactly(tmp_path):
    store = ArtifactStore(tmp_path)
    value = 0.1 + 0.2  # not representable; repr round-trips bit-exactly
    store.save("k", json_payload({"v": value}))
    assert payload_json(store.load("k"))["v"] == value


def test_miss_and_hit_counters(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load("absent") is None
    store.save("k", json_payload({}))
    assert store.load("k") is not None
    assert store.stats() == {"hits": 1, "misses": 1, "writes": 1, "entries": 1}


def test_contains(tmp_path):
    store = ArtifactStore(tmp_path)
    assert "k" not in store
    store.save("k", json_payload({}))
    assert "k" in store


def test_corrupt_entry_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("k", json_payload({"x": 1}))
    (tmp_path / "k.npz").write_bytes(b"not a zip archive")
    assert store.load("k") is None
    assert store.misses == 1


def test_truncated_entry_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("k", json_payload({"x": 1}))
    path = tmp_path / "k.npz"
    path.write_bytes(path.read_bytes()[:10])
    assert store.load("k") is None


def test_reserved_array_name_rejected():
    with pytest.raises(StoreError, match="reserved"):
        json_payload({}, arrays={"__json__": np.zeros(1)})


def test_payload_without_json_entry_raises():
    with pytest.raises(StoreError, match="no valid JSON"):
        payload_json({"matrix": np.zeros(1)})


def test_loaded_arrays_survive_store_deletion(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("k", json_payload({}, arrays={"a": np.ones(4)}))
    loaded = store.load("k")
    (tmp_path / "k.npz").unlink()
    np.testing.assert_array_equal(loaded["a"], np.ones(4))

"""Satellite: kill the pipeline after stage k, re-run, verify resume.

The contract under test: after an interrupted run, re-running the same
pipeline against the same store (a) serves every stage completed before
the failure from cache, (b) re-runs no member simulation those stages
already paid for, and (c) produces final outputs bit-identical to an
uninterrupted run — for every execution backend.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments import get_experiment
from repro.pipeline import Pipeline, StageError, root_cause_pipeline
from repro.refine import RefinementConfig

EXPERIMENT = get_experiment("wsubbug").with_(
    members=6, nsteps=1, refine=RefinementConfig(members=4)
)

#: stage to kill at, with the cacheable stages that must resume as hits
KILL_POINTS = {
    "experimental_runs": ["control_ensemble"],
    "ect": ["control_ensemble", "experimental_runs", "coverage_run"],
    "refined": [
        "control_ensemble",
        "experimental_runs",
        "coverage_run",
        "ect",
        "ranked_slice",
    ],
}


def killed_pipeline(pipeline: Pipeline, kill_at: str) -> Pipeline:
    """The same DAG with ``kill_at``'s function replaced by a bomb.

    Stage keys derive from name/params/inputs — not the function — so
    the store written by this pipeline is exactly the store the healthy
    pipeline resumes from.
    """

    def boom(ctx, **kwargs):
        raise RuntimeError("simulated crash")

    stages = [
        dataclasses.replace(s, func=boom) if s.name == kill_at else s
        for s in pipeline.stages
    ]
    return Pipeline(stages, store_dir=pipeline.store_dir)


def report_fingerprint(result) -> str:
    return json.dumps(result["report"].to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    """The reference run: one clean pass in its own store."""
    store = tmp_path_factory.mktemp("reference-store")
    return root_cause_pipeline(
        EXPERIMENT, store_dir=store, backend="serial"
    ).run()


@pytest.mark.parametrize("kill_at", sorted(KILL_POINTS))
def test_resume_after_crash_at_stage(kill_at, tmp_path, uninterrupted):
    store = tmp_path / "store"
    healthy = root_cause_pipeline(
        EXPERIMENT, store_dir=store, backend="serial"
    )

    with pytest.raises(StageError) as excinfo:
        killed_pipeline(healthy, kill_at).run()
    assert excinfo.value.stage == kill_at
    completed = {
        r.name for r in excinfo.value.records if r.status in ("hit", "ran")
    }
    assert set(KILL_POINTS[kill_at]) <= completed

    resumed = healthy.run()
    for name in KILL_POINTS[kill_at]:
        record = resumed.record(name)
        assert record.status == "hit", f"{name} re-ran after resume"
        assert record.member_misses == 0, f"{name} re-ran members"
    # the failed stage itself (and everything after) runs now
    assert resumed.record(kill_at).status == "ran"
    # and the outcome is exactly the uninterrupted run's
    np.testing.assert_array_equal(
        resumed["control_ensemble"].matrix,
        uninterrupted["control_ensemble"].matrix,
    )
    assert report_fingerprint(resumed) == report_fingerprint(uninterrupted)


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_resume_bit_identical_across_backends(
    backend, tmp_path, uninterrupted
):
    """Crash mid-pipeline, resume on ``backend``: same bits as serial."""
    store = tmp_path / "store"
    healthy = root_cause_pipeline(
        EXPERIMENT, store_dir=store, backend=backend, max_workers=2
    )
    with pytest.raises(StageError):
        killed_pipeline(healthy, "ect").run()

    resumed = healthy.run()
    assert resumed.record("control_ensemble").status == "hit"
    assert sum(r.member_misses for r in resumed.records) == 0
    np.testing.assert_array_equal(
        resumed["control_ensemble"].matrix,
        uninterrupted["control_ensemble"].matrix,
    )
    np.testing.assert_array_equal(
        resumed["ect"].run_scores, uninterrupted["ect"].run_scores
    )
    assert report_fingerprint(resumed) == report_fingerprint(uninterrupted)

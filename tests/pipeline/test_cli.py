"""``python -m repro`` in process: run/resume, sweep, list, tables."""

import io
import json

import pytest

from repro.cli import main

RUN_ARGS = [
    "--members", "6",
    "--nsteps", "1",
    "--refine-members", "4",
    "--backend", "serial",
]


def invoke(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_names_the_six_experiments():
    code, text = invoke(["list"])
    assert code == 0
    for name in ("cldfrc-premib", "goffgratch", "mg-autoconv",
                 "rand-mt", "wsubbug", "fma"):
        assert name in text


class TestRun:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("cli-store"))

    @pytest.fixture(scope="class")
    def first_run(self, store):
        return invoke(
            ["run", "wsubbug", "--store", store, "--json", *RUN_ARGS]
        )

    def test_first_run_localizes_and_exits_zero(self, first_run):
        code, text = first_run
        assert code == 0
        doc = json.loads(text)
        assert doc["report"]["localized"] is True
        assert doc["report"]["experiment"] == "wsubbug"
        assert len(doc["report"]["refined_modules"]) <= 10
        statuses = {s["name"]: s["status"] for s in doc["stages"]}
        assert statuses["control_ensemble"] == "ran"
        assert statuses["report"] == "ran"

    def test_second_run_resumes_without_member_simulations(
        self, store, first_run
    ):
        code, text = invoke(
            ["run", "wsubbug", "--store", store, "--json", *RUN_ARGS]
        )
        assert code == 0
        doc = json.loads(text)
        stages = {s["name"]: s for s in doc["stages"]}
        assert stages["control_ensemble"]["status"] == "hit"
        assert stages["ect"]["status"] == "hit"
        assert stages["refined"]["status"] == "hit"
        assert sum(s["member_misses"] for s in doc["stages"]) == 0
        assert doc["report"] == json.loads(first_run[1])["report"]

    def test_markdown_output(self, store, first_run):
        code, text = invoke(["run", "wsubbug", "--store", store, *RUN_ARGS])
        assert code == 0
        assert "# Root cause report: wsubbug" in text
        assert "| control_ensemble | hit |" in text

class TestBadNames:
    """Bad experiment/backend names exit 2 (usage error) with the known
    candidates on stderr — distinct from exit 1, which means the run
    completed but did not localize."""

    def test_unknown_experiment_exits_2_naming_candidates(
        self, tmp_path, capsys
    ):
        code, text = invoke(["run", "warpdrive", "--store", str(tmp_path)])
        assert code == 2
        assert text == ""
        err = capsys.readouterr().err
        assert "error:" in err and "warpdrive" in err
        assert "wsubbug" in err  # the known names are listed

    def test_unknown_backend_exits_2(self, tmp_path, capsys):
        code, _ = invoke(
            ["run", "wsubbug", "--store", str(tmp_path),
             "--backend", "quantum"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "quantum" in err and "vectorized" in err

    def test_sweep_validates_every_name_before_running(
        self, tmp_path, capsys
    ):
        code, _ = invoke(
            ["sweep", "wsubbug", "warpdrive", "--store", str(tmp_path)]
        )
        assert code == 2
        assert "warpdrive" in capsys.readouterr().err
        # nothing ran: the shared store was never populated
        assert list(tmp_path.iterdir()) == []


def test_sweep_shares_the_store(tmp_path):
    code, text = invoke(
        [
            "sweep", "wsubbug", "goffgratch",
            "--store", str(tmp_path), "--json", *RUN_ARGS,
        ]
    )
    assert code == 0
    doc = json.loads(text)
    assert doc["failures"] == []
    second = {
        s["name"]: s
        for s in doc["experiments"]["goffgratch"]["stages"]
    }
    assert second["control_ensemble"]["status"] == "hit"


def test_tables_json_covers_the_40_modules():
    code, text = invoke(["tables", "--json", "--top", "40"])
    assert code == 0
    degree, centrality = json.loads(text)
    assert ["modules", 40] in degree["rows"]
    assert len(centrality["rows"]) == 40


def test_module_entry_point_exists():
    import repro.__main__  # noqa: F401  (import side effects only)

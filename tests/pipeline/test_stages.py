"""Stage adapters over the real model: rehydration, counters, facade."""

import numpy as np
import pytest

from repro.ensemble import EnsembleSpec, generate_ensemble
from repro.experiments import get_experiment
from repro.pipeline import RootCauseAnalysis, accepted_ensemble, root_cause_pipeline
from repro.refine import RefinementConfig

SMALL_SPEC = EnsembleSpec(n_members=3, nsteps=1)

#: the smallest wsubbug experiment that still detects and localizes
SMALL_EXPERIMENT = get_experiment("wsubbug").with_(
    members=6, nsteps=1, refine=RefinementConfig(members=4)
)


@pytest.fixture(scope="module")
def small_run(tmp_path_factory):
    store = tmp_path_factory.mktemp("stages-store")
    result = RootCauseAnalysis(
        SMALL_EXPERIMENT, store_dir=store, backend="serial"
    ).run()
    return store, result


class TestAcceptedEnsemble:
    def test_matches_direct_generation_bit_for_bit(self, tmp_path):
        via_pipeline = accepted_ensemble(
            SMALL_SPEC, store_dir=tmp_path, backend="serial"
        )
        direct = generate_ensemble(SMALL_SPEC, backend="serial")
        np.testing.assert_array_equal(via_pipeline.matrix, direct.matrix)
        assert via_pipeline.variable_names == direct.variable_names
        assert via_pipeline.coverage == direct.coverage

    def test_resume_rehydrates_from_member_cache(self, tmp_path):
        first = accepted_ensemble(
            SMALL_SPEC, store_dir=tmp_path, backend="serial"
        )
        again = accepted_ensemble(
            SMALL_SPEC, store_dir=tmp_path, backend="serial"
        )
        assert again.cache_hits == SMALL_SPEC.n_members
        assert again.cache_misses == 0
        np.testing.assert_array_equal(again.matrix, first.matrix)
        for mine, ref in zip(again.members, first.members):
            assert mine.prng_draws == ref.prng_draws
            assert mine.statements_executed == ref.statements_executed

    def test_lost_member_artifact_heals_by_rerunning(self, tmp_path):
        accepted_ensemble(SMALL_SPEC, store_dir=tmp_path, backend="serial")
        victim = next((tmp_path / "members").glob("*.npz"))
        victim.unlink()
        healed = accepted_ensemble(
            SMALL_SPEC, store_dir=tmp_path, backend="serial"
        )
        # the stage decode noticed the gap, fell back to generation, and
        # generation recomputed exactly the missing member
        assert healed.cache_misses >= 1
        assert healed.n_members == SMALL_SPEC.n_members


class TestRootCausePipeline:
    def test_stage_names_and_order(self):
        pipeline = root_cause_pipeline(SMALL_EXPERIMENT)
        names = [s.name for s in pipeline.stages]
        assert names.index("control_source") < names.index("control_ensemble")
        assert names.index("control_ensemble") < names.index("ect")
        assert names.index("ect") < names.index("ranked_slice")
        assert names.index("ranked_slice") < names.index("selection")
        assert names.index("selection") < names.index("refined")
        assert names[-1] == "report"
        assert "patched_source" in names  # wsubbug is a patched experiment

    def test_control_experiment_has_no_patched_source(self):
        from repro.experiments import ExperimentSpec

        control = ExperimentSpec(name="control")
        names = [s.name for s in root_cause_pipeline(control).stages]
        assert "patched_source" not in names

    def test_end_to_end_localizes_the_patch(self, small_run):
        _, result = small_run
        report = result["report"]
        assert report.detected
        assert "microp_aero" in report.refined_modules
        assert report.localized
        assert report.total_modules == 40

    def test_member_counters_surface_in_records(self, small_run):
        _, result = small_run
        ensemble_record = result.record("control_ensemble")
        assert ensemble_record.member_misses == SMALL_EXPERIMENT.members
        assert result.record("experimental_runs").member_misses == 3
        assert result.record("coverage_run").member_misses == 1

    def test_resume_is_bit_identical_and_runs_no_members(self, small_run):
        store, first = small_run
        second = RootCauseAnalysis(
            SMALL_EXPERIMENT, store_dir=store, backend="serial"
        ).run()
        cacheable = [r for r in second.records if r.cacheable]
        assert cacheable and all(r.status == "hit" for r in cacheable)
        assert sum(r.member_misses for r in second.records) == 0
        np.testing.assert_array_equal(
            second["control_ensemble"].matrix,
            first["control_ensemble"].matrix,
        )
        assert second["report"].to_dict() == first["report"].to_dict()
        assert second["ect"].consistent == first["ect"].consistent
        np.testing.assert_array_equal(
            second["ect"].run_scores, first["ect"].run_scores
        )
        assert second["ranked_slice"].modules == first["ranked_slice"].modules
        assert second["refined"].modules == first["refined"].modules

    def test_backend_choice_does_not_change_stage_keys(self):
        serial = root_cause_pipeline(SMALL_EXPERIMENT, backend="serial")
        process = root_cause_pipeline(
            SMALL_EXPERIMENT, backend="process", max_workers=2
        )
        assert serial.keys() == process.keys()

    def test_experiment_knobs_change_stage_keys(self):
        base = root_cause_pipeline(SMALL_EXPERIMENT).keys()
        bigger = root_cause_pipeline(
            SMALL_EXPERIMENT.with_(members=7)
        ).keys()
        assert base["control_ensemble"] != bigger["control_ensemble"]
        # target_modules only parameterizes the report stage
        retarget = root_cause_pipeline(
            SMALL_EXPERIMENT.with_(target_modules=5)
        ).keys()
        assert base["refined"] == retarget["refined"]
        assert base["report"] != retarget["report"]

    def test_facade_resolves_experiment_names(self, tmp_path):
        analysis = RootCauseAnalysis("wsubbug", store_dir=tmp_path)
        assert analysis.experiment.patch == "wsubbug"
        assert analysis.pipeline.stage("report") is not None

"""Fused cross-config prewarm: one batched stage, unchanged member keys.

The fused stage must be a pure accelerator — it warms the very same
member-cache entries the scalar-side ``experimental_runs`` stage reads
(and vice versa), so running it first means the per-experiment pipelines
re-run zero experimental members, and running it second finds everything
already warm.  Detection built on fused-warmed artifacts must localize
exactly as the scalar path does.
"""

import pytest

from repro.experiments import get_experiment
from repro.pipeline import RootCauseAnalysis, fused_experimental_pipeline
from repro.refine import RefinementConfig

SMALL = get_experiment("wsubbug").with_(
    members=6, nsteps=1, refine=RefinementConfig(members=4)
)


@pytest.fixture(scope="module")
def prewarmed(tmp_path_factory):
    store = tmp_path_factory.mktemp("fused-store")
    result = fused_experimental_pipeline([SMALL], store_dir=store).run()
    return store, result


class TestFusedPrewarm:
    def test_cold_prewarm_runs_every_experimental_member(self, prewarmed):
        _, result = prewarmed
        record = result.record("fused_experimental_runs")
        assert record.member_misses == SMALL.n_runs
        assert record.member_hits == 0
        runs = result["fused_experimental_runs"][SMALL.name]
        assert len(runs) == SMALL.n_runs

    def test_scalar_pipeline_hits_the_prewarmed_cache(self, prewarmed):
        store, _ = prewarmed
        analysis = RootCauseAnalysis(
            SMALL, store_dir=store, backend="serial"
        ).run()
        record = analysis.record("experimental_runs")
        assert record.member_hits == SMALL.n_runs
        assert record.member_misses == 0
        # the fused-warmed artifacts drive the same science
        assert analysis["report"].detected
        assert analysis["report"].localized

    def test_resume_is_a_stage_hit(self, prewarmed):
        store, first = prewarmed
        second = fused_experimental_pipeline([SMALL], store_dir=store).run()
        record = second.record("fused_experimental_runs")
        assert record.status == "hit"
        assert record.member_misses == 0
        got = second["fused_experimental_runs"][SMALL.name]
        want = first["fused_experimental_runs"][SMALL.name]
        for mine, ref in zip(got, want):
            assert mine.prng_draws == ref.prng_draws
            assert mine.statements_executed == ref.statements_executed

    def test_scalar_first_then_fused_finds_everything_warm(self, tmp_path):
        RootCauseAnalysis(SMALL, store_dir=tmp_path, backend="serial").run()
        result = fused_experimental_pipeline(
            [SMALL], store_dir=tmp_path
        ).run()
        record = result.record("fused_experimental_runs")
        assert record.member_hits == SMALL.n_runs
        assert record.member_misses == 0


class TestMultiExperimentLanes:
    def test_two_experiments_batch_in_one_stage(self, tmp_path):
        from repro.obs import get_metrics

        specs = [
            get_experiment("wsubbug").with_(members=6, nsteps=1),
            get_experiment("goffgratch").with_(members=6, nsteps=1),
        ]
        pipeline = fused_experimental_pipeline(specs, store_dir=tmp_path)
        names = [s.name for s in pipeline.stages]
        # distinct patched models get their own source stage, one fused
        # runs stage consumes them all
        assert names.count("fused_experimental_runs") == 1
        assert len([n for n in names if n.startswith("experimental_source")]) == 2

        before = get_metrics().counters().get("vec.fused_configs", 0)
        result = pipeline.run()
        after = get_metrics().counters().get("vec.fused_configs", 0)
        # each lane fuses its n_runs configs into one batch
        assert after - before == sum(s.n_runs - 1 for s in specs)
        record = result.record("fused_experimental_runs")
        assert record.member_misses == sum(s.n_runs for s in specs)
        for spec in specs:
            assert len(result["fused_experimental_runs"][spec.name]) == spec.n_runs

"""The DAG engine on toy stages: ordering, keys, caching, failure."""

import dataclasses

import pytest

from repro.pipeline import (
    Pipeline,
    PipelineError,
    Stage,
    StageError,
    config_token,
    json_payload,
    payload_json,
)


def value_stage(name, value, inputs=(), params=None, combine=None):
    """A cacheable toy stage computing ``value`` (or combining inputs)."""

    def func(ctx, **kwargs):
        if combine is not None:
            return combine(**kwargs)
        return value

    return Stage(
        name=name,
        func=func,
        inputs=tuple(inputs),
        params=dict(params or {"value": value}),
        encode=lambda v, ctx, inputs: json_payload({"v": v}),
        decode=lambda payload, ctx, inputs: payload_json(payload)["v"],
    )


class TestStructure:
    def test_topological_order_with_declaration_tie_break(self):
        stages = [
            value_stage("z", 1),
            value_stage("a", 2),
            value_stage("join", 0, inputs=("z", "a"),
                        combine=lambda z, a: z + a),
        ]
        pipeline = Pipeline(stages)
        assert [s.name for s in pipeline.stages] == ["z", "a", "join"]

    def test_dependencies_run_before_dependents(self):
        stages = [
            value_stage("sum", 0, inputs=("x", "y"),
                        combine=lambda x, y: x + y),
            value_stage("x", 3),
            value_stage("y", 4),
        ]
        result = Pipeline(stages).run()
        assert result["sum"] == 7
        assert result.value == 7  # terminal = last in dependency order

    def test_cycle_is_rejected(self):
        a = value_stage("a", 1, inputs=("b",), combine=lambda b: b)
        b = value_stage("b", 2, inputs=("a",), combine=lambda a: a)
        with pytest.raises(PipelineError, match="cycle"):
            Pipeline([a, b])

    def test_unknown_input_is_rejected(self):
        with pytest.raises(PipelineError, match="unknown"):
            Pipeline([value_stage("a", 1, inputs=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline([value_stage("a", 1), value_stage("a", 2)])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError, match="at least one"):
            Pipeline([])

    def test_cacheable_stage_requires_codec(self):
        with pytest.raises(PipelineError, match="encode and decode"):
            Stage(name="a", func=lambda ctx: 1)

    def test_bad_stage_name_rejected(self):
        with pytest.raises(PipelineError, match="identifier"):
            Stage(name="no spaces", func=lambda ctx: 1, cacheable=False)


class TestKeys:
    def test_same_definition_same_key(self):
        assert (
            value_stage("a", 1).key({}) == value_stage("a", 1).key({})
        )

    def test_params_change_key(self):
        assert (
            value_stage("a", 1, params={"k": 1}).key({})
            != value_stage("a", 1, params={"k": 2}).key({})
        )

    def test_name_changes_key(self):
        assert value_stage("a", 1).key({}) != value_stage("b", 1).key({})

    def test_upstream_change_invalidates_downstream_transitively(self):
        def keys(upstream_value):
            return Pipeline(
                [
                    value_stage("a", 1, params={"value": upstream_value}),
                    value_stage("mid", 0, inputs=("a",),
                                combine=lambda a: a),
                    value_stage("leaf", 0, inputs=("mid",),
                                combine=lambda mid: mid),
                ]
            ).keys()

        base, changed = keys(1), keys(2)
        assert base["mid"] != changed["mid"]
        assert base["leaf"] != changed["leaf"]

    def test_dataclass_params_expand_field_by_field(self):
        @dataclasses.dataclass(frozen=True)
        class Knobs:
            alpha: float = 0.5
            tags: frozenset = frozenset({"b", "a"})

        token = config_token(Knobs())
        assert token == {"alpha": (0.5).hex(), "tags": ["a", "b"]}
        assert config_token(Knobs(alpha=0.25)) != token

    def test_fingerprint_overrides_downstream_contribution(self):
        def pipeline(fp_value):
            src = Stage(
                name="src",
                func=lambda ctx: fp_value,
                cacheable=False,
                fingerprint=lambda v: str(v),
            )
            leaf = value_stage("leaf", 0, inputs=("src",),
                               combine=lambda src: src)
            return Pipeline([src, leaf])

        r1 = pipeline("digest-1").run()
        r2 = pipeline("digest-2").run()
        assert r1.record("leaf").key != r2.record("leaf").key
        # the static keys() preview can't see dynamic fingerprints
        assert pipeline("digest-1").keys()["leaf"] == \
            pipeline("digest-2").keys()["leaf"]

    def test_nan_param_hashes_deterministically(self):
        """config_token hex-encodes floats, so even a NaN knob produces
        a canonical key equal to its own recompute — it must never reach
        json.dumps as the non-canonical ``NaN`` token."""
        nan = float("nan")
        key = value_stage("a", 1, params={"k": nan}).key({})
        assert key == value_stage("a", 1, params={"k": nan}).key({})
        assert key != value_stage("a", 1, params={"k": 1.0}).key({})

    def test_non_finite_token_is_a_named_error(self, monkeypatch):
        """The defensive rail behind config_token: a raw non-finite in
        the cache token is a PipelineError naming the location, not a
        bare json.dumps ValueError."""
        from repro.pipeline import core as core_mod

        monkeypatch.setattr(
            core_mod, "config_token", lambda value: {"k": float("nan")}
        )
        with pytest.raises(
            PipelineError, match=r"non-finite float at \$\.params\.k"
        ):
            value_stage("a", 1).key({})


class TestCaching:
    def three_stage(self, store, calls):
        def counted(name, value):
            stage = value_stage(name, value)

            def func(ctx, **kwargs):
                calls.append(name)
                return value

            return dataclasses.replace(stage, func=func)

        return Pipeline(
            [
                counted("a", 1),
                value_stage("b", 0, inputs=("a",), combine=lambda a: a + 1),
                counted("c", 5),
            ],
            store_dir=store,
        )

    def test_second_run_hits_every_cacheable_stage(self, tmp_path):
        calls = []
        first = self.three_stage(tmp_path, calls).run()
        assert [r.status for r in first.records] == ["ran"] * 3
        assert first.store_stats["writes"] == 3

        second = self.three_stage(tmp_path, calls).run()
        assert [r.status for r in second.records] == ["hit"] * 3
        assert second.outputs == first.outputs
        assert calls == ["a", "c"]  # nothing re-ran
        # records carry the store traffic
        assert all(r.store_hits == 1 for r in second.records)
        assert all(r.store_misses == 0 for r in second.records)

    def test_no_store_always_runs(self):
        calls = []
        pipeline = self.three_stage(None, calls)
        pipeline.run()
        pipeline.run()
        assert calls == ["a", "c", "a", "c"]

    def test_param_change_reruns_stage_and_downstream(self, tmp_path):
        Pipeline(
            [value_stage("a", 1), value_stage("b", 0, inputs=("a",),
                                              combine=lambda a: a)],
            store_dir=tmp_path,
        ).run()
        changed = Pipeline(
            [
                value_stage("a", 2),  # params {"value": 2}: new key
                value_stage("b", 0, inputs=("a",), combine=lambda a: a),
            ],
            store_dir=tmp_path,
        ).run()
        assert [r.status for r in changed.records] == ["ran", "ran"]
        assert changed["b"] == 2

    def test_decode_failure_is_a_miss_and_recomputes(self, tmp_path):
        pipeline = Pipeline([value_stage("a", 42)], store_dir=tmp_path)
        pipeline.run()

        stage = pipeline.stages[0]
        broken = dataclasses.replace(
            stage,
            decode=lambda payload, ctx, inputs: (_ for _ in ()).throw(
                ValueError("stale payload")
            ),
        )
        result = Pipeline([broken], store_dir=tmp_path).run()
        assert result.record("a").status == "ran"
        assert result["a"] == 42

    def test_non_cacheable_stage_always_runs(self, tmp_path):
        calls = []

        def func(ctx):
            calls.append("src")
            return "tree"

        src = Stage(name="src", func=func, cacheable=False)
        Pipeline([src], store_dir=tmp_path).run()
        Pipeline([src], store_dir=tmp_path).run()
        assert calls == ["src", "src"]


class TestFailure:
    def test_stage_error_names_stage_and_keeps_prefix_artifacts(
        self, tmp_path
    ):
        def boom(ctx, **kwargs):
            raise RuntimeError("kaboom")

        stages = [
            value_stage("a", 1),
            dataclasses.replace(
                value_stage("b", 0, inputs=("a",)), func=boom
            ),
        ]
        with pytest.raises(StageError, match="'b'.*kaboom") as excinfo:
            Pipeline(stages, store_dir=tmp_path).run()
        err = excinfo.value
        assert err.stage == "b"
        assert [r.status for r in err.records] == ["ran", "error"]
        # the completed prefix is in the store: a re-run resumes from it
        resumed = Pipeline(
            [value_stage("a", 1), value_stage("b", 0, inputs=("a",),
                                              combine=lambda a: a + 1)],
            store_dir=tmp_path,
        ).run()
        assert resumed.record("a").status == "hit"
        assert resumed["b"] == 2


class TestResult:
    def test_record_timings_and_to_dict(self, tmp_path):
        result = Pipeline(
            [value_stage("a", 1)], store_dir=tmp_path
        ).run()
        assert result.record("a").name == "a"
        with pytest.raises(KeyError):
            result.record("ghost")
        assert set(result.timings()) == {"a"}
        doc = result.to_dict()
        assert doc["stages"][0]["name"] == "a"
        assert doc["stages"][0]["status"] == "ran"
        assert doc["store"]["writes"] == 1

"""Tests for the model registry, builder and bug-injection patches."""

import pytest

from repro.model import (
    COMPSET_FC5,
    ModelConfig,
    ModelSource,
    SourcePatch,
    build_model_source,
    get_patch,
    iter_module_specs,
    list_patches,
)
from repro.model.patches import PatchError
from repro.model.registry import MODULE_SPECS, get_compset


class TestRegistry:
    def test_all_eleven_providers_contribute(self):
        providers = {spec.provider for spec in MODULE_SPECS}
        assert len(providers) == 11

    def test_fc5_excludes_uncompiled_subsystems(self):
        for name in ("cam_chemistry.F90", "waccm_physics.F90"):
            assert not COMPSET_FC5.compiles(name)
        assert COMPSET_FC5.compiles("seasalt_optics.F90")
        assert COMPSET_FC5.compiles("micro_mg.F90")

    def test_iter_module_specs_restricts_to_compiled(self):
        every = list(iter_module_specs())
        compiled = list(iter_module_specs(compset="FC5", include_uncompiled=False))
        assert len(compiled) == len(every) - len(COMPSET_FC5.excluded_files)
        # even with four files excluded, every provider still contributes
        assert {s.provider for s in compiled} == {s.provider for s in every}

    def test_unknown_compset_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown compset"):
            get_compset("B1850")


class TestBuilder:
    def test_build_returns_model_source(self):
        src = build_model_source(ModelConfig())
        assert isinstance(src, ModelSource)
        assert set(src.compiled_files) < set(src.files)
        assert "physpkg.F90" in src.compiled_files
        assert "cam_chemistry.F90" not in src.compiled_files

    def test_default_config_is_implied(self):
        assert build_model_source().compset.name == "FC5"

    def test_parse_covers_every_compiled_file(self):
        src = build_model_source(ModelConfig())
        asts = src.parse()
        assert set(asts) == set(src.compiled_files)
        # the front end parses the whole synthetic model without leftovers
        for ast in asts.values():
            for mod in ast.modules:
                assert mod.unparsed == []

    def test_modules_keyed_by_fortran_module_name(self):
        mods = build_model_source(ModelConfig()).modules()
        for expected in ("physpkg", "micro_mg", "cam_comp", "wv_saturation"):
            assert expected in mods

    def test_parse_is_cached(self):
        src = build_model_source(ModelConfig())
        assert src.parse() is src.parse()


class TestPatches:
    def test_list_and_get(self):
        names = list_patches()
        assert "goffgratch" in names
        patch = get_patch("goffgratch")
        assert isinstance(patch, SourcePatch)
        assert patch.filename == "wv_saturation.F90"

    def test_unknown_patch_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown patch"):
            get_patch("no-such-bug")

    def test_every_registered_patch_applies_to_the_model(self):
        clean = build_model_source(ModelConfig())
        for name in list_patches():
            patched = build_model_source(ModelConfig(patches=(name,)))
            patch = get_patch(name)
            assert patched.files[patch.filename] != clean.files[patch.filename]
            assert patch.new in patched.files[patch.filename]
            # patched source must still parse cleanly
            patched.parse()

    def test_patch_must_apply_exactly_once(self):
        patch = SourcePatch(
            name="x", filename="micro_mg.F90", description="",
            old="0.0_r8", new="1.0_r8",
        )
        with pytest.raises(PatchError, match="exactly one"):
            patch.apply(build_model_source().files)

    def test_patch_missing_file_raises(self):
        patch = SourcePatch(
            name="x", filename="nope.F90", description="", old="a", new="b"
        )
        with pytest.raises(PatchError, match="missing file"):
            patch.apply({})

    def test_unpatched_model_is_untouched(self):
        a = build_model_source(ModelConfig())
        b = build_model_source(ModelConfig(patches=("goffgratch",)))
        assert a.files["wv_saturation.F90"] != b.files["wv_saturation.F90"]
        assert a.files["micro_mg.F90"] == b.files["micro_mg.F90"]

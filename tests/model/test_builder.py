"""Tests for the model registry, builder and bug-injection patches."""

import pytest

from repro.model import (
    COMPSET_FC5,
    ModelConfig,
    ModelSource,
    SourcePatch,
    build_model_source,
    get_patch,
    iter_module_specs,
    list_patches,
)
from repro.model.patches import PatchError
from repro.model.registry import MODULE_SPECS, get_compset


class TestRegistry:
    def test_all_eleven_providers_contribute(self):
        providers = {spec.provider for spec in MODULE_SPECS}
        assert len(providers) == 11

    def test_fc5_excludes_uncompiled_subsystems(self):
        for name in ("cam_chemistry.F90", "waccm_physics.F90"):
            assert not COMPSET_FC5.compiles(name)
        assert COMPSET_FC5.compiles("seasalt_optics.F90")
        assert COMPSET_FC5.compiles("micro_mg.F90")

    def test_iter_module_specs_restricts_to_compiled(self):
        every = list(iter_module_specs())
        compiled = list(iter_module_specs(compset="FC5", include_uncompiled=False))
        assert len(compiled) == len(every) - len(COMPSET_FC5.excluded_files)
        # even with four files excluded, every provider still contributes
        assert {s.provider for s in compiled} == {s.provider for s in every}

    def test_unknown_compset_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown compset"):
            get_compset("B1850")


class TestBuilder:
    def test_build_returns_model_source(self):
        src = build_model_source(ModelConfig())
        assert isinstance(src, ModelSource)
        assert set(src.compiled_files) < set(src.files)
        assert "physpkg.F90" in src.compiled_files
        assert "cam_chemistry.F90" not in src.compiled_files

    def test_default_config_is_implied(self):
        assert build_model_source().compset.name == "FC5"

    def test_parse_covers_every_compiled_file(self):
        src = build_model_source(ModelConfig())
        asts = src.parse()
        assert set(asts) == set(src.compiled_files)
        # the front end parses the whole synthetic model without leftovers
        for ast in asts.values():
            for mod in ast.modules:
                assert mod.unparsed == []

    def test_modules_keyed_by_fortran_module_name(self):
        mods = build_model_source(ModelConfig()).modules()
        for expected in ("physpkg", "micro_mg", "cam_comp", "wv_saturation"):
            assert expected in mods

    def test_parse_is_cached(self):
        src = build_model_source(ModelConfig())
        assert src.parse() is src.parse()

    def test_parse_cache_returns_identical_ast_objects(self):
        # the interpreter and the metagraph builder must share one parse:
        # the second call returns the very same SourceFileAST objects
        src = build_model_source(ModelConfig())
        first = src.parse()
        second = src.parse()
        for name, ast in first.items():
            assert second[name] is ast

    def test_parse_include_uncompiled_covers_every_file(self):
        src = build_model_source(ModelConfig())
        all_asts = src.parse(include_uncompiled=True)
        assert set(all_asts) == set(src.files)
        assert set(src.files) - set(src.compiled_files) == set(
            src.compset.excluded_files
        )
        # excluded subsystems parse cleanly even though they never compile
        for name in src.compset.excluded_files:
            assert all_asts[name].modules

    def test_parse_include_uncompiled_does_not_poison_the_cache(self):
        src = build_model_source(ModelConfig())
        cached = src.parse()
        src.parse(include_uncompiled=True)
        assert src.parse() is cached
        assert set(src.parse()) == set(src.compiled_files)


class TestOutputRegistry:
    def test_field_names_are_unique(self):
        from repro.model import OUTPUT_FIELD_NAMES

        assert len(OUTPUT_FIELD_NAMES) == len(set(OUTPUT_FIELD_NAMES))

    def test_fields_point_at_registered_files(self):
        from repro.model import OUTPUT_FIELDS

        known = {spec.filename for spec in MODULE_SPECS}
        for fld in OUTPUT_FIELDS:
            assert fld.filename in known, fld

    def test_registry_matches_the_outfld_calls_in_the_source(self):
        # every outfld/outfld2d call in the model writes a declared field,
        # and every declared field is written somewhere in its file
        import re

        from repro.model import OUTPUT_FIELDS

        src = build_model_source(ModelConfig())
        call_re = re.compile(r"call\s+outfld(?:2d)?\('([A-Z0-9]+)',")
        written: dict[str, set[str]] = {}
        for filename, text in src.files.items():
            for name in call_re.findall(text):
                written.setdefault(name, set()).add(filename)
        declared = {fld.name: fld.filename for fld in OUTPUT_FIELDS}
        assert set(written) == set(declared)
        for name, filename in declared.items():
            assert filename in written[name], name

    def test_iter_output_fields_respects_the_compset(self):
        from repro.model import iter_output_fields

        names = [f.name for f in iter_output_fields(COMPSET_FC5)]
        assert "PRECT" in names and "T" in names
        all_names = [f.name for f in iter_output_fields()]
        assert set(names) <= set(all_names)


class TestPatches:
    def test_list_and_get(self):
        names = list_patches()
        assert "goffgratch" in names
        patch = get_patch("goffgratch")
        assert isinstance(patch, SourcePatch)
        assert patch.filename == "wv_saturation.F90"

    def test_unknown_patch_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown patch"):
            get_patch("no-such-bug")

    def test_every_registered_patch_applies_to_the_model(self):
        clean = build_model_source(ModelConfig())
        for name in list_patches():
            patched = build_model_source(ModelConfig(patches=(name,)))
            patch = get_patch(name)
            assert patched.files[patch.filename] != clean.files[patch.filename]
            assert patch.new in patched.files[patch.filename]
            # patched source must still parse cleanly
            patched.parse()

    def test_patch_must_apply_exactly_once(self):
        patch = SourcePatch(
            name="x", filename="micro_mg.F90", description="",
            old="0.0_r8", new="1.0_r8",
        )
        with pytest.raises(PatchError, match="exactly one"):
            patch.apply(build_model_source().files)

    def test_patch_missing_file_raises(self):
        patch = SourcePatch(
            name="x", filename="nope.F90", description="", old="a", new="b"
        )
        with pytest.raises(PatchError, match="missing file"):
            patch.apply({})

    def test_unknown_patch_name_in_config_raises_patch_error(self):
        # regression: this used to leak a bare KeyError out of
        # build_model_source instead of a PatchError naming the registry
        with pytest.raises(PatchError, match="goffgratch"):
            build_model_source(ModelConfig(patches=("no-such-bug",)))

    def test_unknown_patch_error_is_also_a_key_error(self):
        from repro.model.patches import UnknownPatchError

        with pytest.raises(UnknownPatchError) as excinfo:
            get_patch("no-such-bug")
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, PatchError)
        # message lists every registered patch, unmangled by KeyError repr
        for name in list_patches():
            assert name in str(excinfo.value)

    def test_absent_target_text_names_the_known_patches(self):
        patch = SourcePatch(
            name="x", filename="micro_mg.F90", description="",
            old="this text is nowhere", new="y",
        )
        with pytest.raises(PatchError, match="drifted") as excinfo:
            patch.apply(build_model_source().files)
        assert "goffgratch" in str(excinfo.value)

    def test_unpatched_model_is_untouched(self):
        a = build_model_source(ModelConfig())
        b = build_model_source(ModelConfig(patches=("goffgratch",)))
        assert a.files["wv_saturation.F90"] != b.files["wv_saturation.F90"]
        assert a.files["micro_mg.F90"] == b.files["micro_mg.F90"]

"""CoverageReport: round-trips, set algebra, filtering, trace edge cases."""

import pytest

from repro.coverage import CoverageReport, CoverageReportError
from repro.runtime import CoverageTrace


def trace(*entries):
    t = CoverageTrace()
    for filename, line, hits in entries:
        t.record(filename, line, hits)
    return t


@pytest.fixture
def report():
    return CoverageReport.from_trace(
        trace(
            ("micro_mg.F90", 10, 3),
            ("micro_mg.F90", 12, 1),
            ("cloud_fraction.F90", 5, 7),
        ),
        meta={"label": "unit"},
    )


class TestRoundTrip:
    def test_trace_round_trip_is_exact(self, report):
        assert CoverageReport.from_trace(report.to_trace()).files == report.files

    def test_json_round_trip_preserves_value(self, report):
        again = CoverageReport.from_json(report.to_json())
        assert again == report

    def test_json_is_byte_stable(self, report):
        text = report.to_json()
        assert CoverageReport.from_json(text).to_json() == text

    def test_file_round_trip(self, report, tmp_path):
        path = tmp_path / "coverage.json"
        report.write(path)
        assert CoverageReport.read(path) == report

    def test_not_json_is_a_clear_error(self):
        with pytest.raises(CoverageReportError, match="not valid JSON"):
            CoverageReport.from_json("{nope")

    def test_wrong_format_marker_is_a_clear_error(self):
        with pytest.raises(CoverageReportError, match="format"):
            CoverageReport.from_json('{"format": "lcov", "version": 1}')

    def test_wrong_version_is_a_clear_error(self, report):
        text = report.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(CoverageReportError, match="version"):
            CoverageReport.from_json(text)


class TestQueries:
    def test_filenames_and_lines(self, report):
        assert report.filenames() == ["cloud_fraction.F90", "micro_mg.F90"]
        assert report.executed_lines("micro_mg.F90") == [10, 12]
        assert report.lines("micro_mg.F90") == {10: 3, 12: 1}
        assert report.hits("micro_mg.F90", 10) == 3
        assert report.hits("micro_mg.F90", 11) == 0
        assert report.lines("never_run.F90") == {}

    def test_totals(self, report):
        assert report.total_lines == 3
        assert report.total_hits == 11

    def test_iteration_is_sorted(self, report):
        assert list(report) == [
            ("cloud_fraction.F90", 5, 7),
            ("micro_mg.F90", 10, 3),
            ("micro_mg.F90", 12, 1),
        ]

    def test_executed_modules_are_normalized(self, report):
        assert report.executed_modules() == ["cloud_fraction", "micro_mg"]


class TestSetAlgebra:
    def test_union_sums_hits(self):
        a = CoverageReport.from_trace(trace(("f.F90", 1, 2), ("f.F90", 2, 1)))
        b = CoverageReport.from_trace(trace(("f.F90", 2, 5), ("g.F90", 9, 1)))
        u = a | b
        assert u.lines("f.F90") == {1: 2, 2: 6}
        assert u.lines("g.F90") == {9: 1}

    def test_intersect_keeps_common_lines_with_min_hits(self):
        a = CoverageReport.from_trace(trace(("f.F90", 1, 2), ("f.F90", 2, 9)))
        b = CoverageReport.from_trace(trace(("f.F90", 2, 5), ("g.F90", 9, 1)))
        i = a & b
        assert i.files == {"f.F90": {2: 5}}

    def test_subtract_keeps_only_unshared_lines(self):
        a = CoverageReport.from_trace(trace(("f.F90", 1, 2), ("f.F90", 2, 9)))
        b = CoverageReport.from_trace(trace(("f.F90", 2, 5)))
        d = a - b
        assert d.files == {"f.F90": {1: 2}}

    def test_variadic_forms_match_pairwise_chaining(self):
        a = CoverageReport.from_trace(trace(("f.F90", 1, 1), ("f.F90", 2, 1)))
        b = CoverageReport.from_trace(trace(("f.F90", 2, 1), ("f.F90", 3, 1)))
        c = CoverageReport.from_trace(trace(("f.F90", 2, 2), ("f.F90", 4, 1)))
        assert a.union(b, c) == (a | b) | c
        assert a.intersect(b, c) == (a & b) & c
        assert a.subtract(b, c) == (a - b) - c

    def test_union_across_members_is_order_independent(self):
        members = [
            CoverageReport.from_trace(trace(("f.F90", i, i + 1), ("g.F90", 1, 1)))
            for i in range(1, 6)
        ]
        forward = members[0].union(*members[1:])
        backward = members[-1].union(*members[:-1][::-1])
        assert forward == backward

    def test_empty_report_is_identity_for_union(self):
        empty = CoverageReport.from_trace(CoverageTrace())
        a = CoverageReport.from_trace(trace(("f.F90", 1, 2)))
        assert not empty
        assert (empty | a) == a
        assert (a | empty) == a
        assert (a & empty).files == {}
        assert (a - empty) == a


class TestRestriction:
    def test_restricted_to_module_names_and_filenames(self, report):
        assert report.restricted_to(["micro_mg"]).filenames() == ["micro_mg.F90"]
        assert report.restricted_to(["micro_mg.F90"]).filenames() == [
            "micro_mg.F90"
        ]
        assert report.restricted_to(["MICRO_MG"]).filenames() == ["micro_mg.F90"]

    def test_restricted_to_unknown_modules_is_empty_not_an_error(self, report):
        restricted = report.restricted_to(["no_such_module", "carma_mod"])
        assert restricted.files == {}
        assert not restricted

    def test_restriction_preserves_hits(self, report):
        assert report.restricted_to(["cloud_fraction"]).lines(
            "cloud_fraction.F90"
        ) == {5: 7}


class TestTraceEdgeCases:
    """Satellite: CoverageTrace edge cases backing the report layer."""

    def test_empty_trace_merge_is_identity(self):
        base = trace(("f.F90", 1, 2))
        merged = base.merged(CoverageTrace(), CoverageTrace())
        assert merged == base
        assert CoverageTrace().merged(base) == base
        assert CoverageTrace().merged() == CoverageTrace()

    def test_trace_restricted_to_unknown_names_is_empty(self):
        base = trace(("f.F90", 1, 2))
        assert base.restricted_to(["nope.F90"]).counts == {}
        assert base.restricted_to([]).counts == {}

    def test_merge_is_deterministic_under_member_reordering(self):
        members = [
            trace(("f.F90", i, 1), ("g.F90", 1, i)) for i in range(1, 8)
        ]
        forward = CoverageTrace().merged(*members)
        backward = CoverageTrace().merged(*reversed(members))
        assert forward == backward
        assert (
            CoverageReport.from_trace(forward).to_json()
            == CoverageReport.from_trace(backward).to_json()
        )

    def test_report_from_empty_trace(self):
        report = CoverageReport.from_trace(CoverageTrace())
        assert report.files == {}
        assert CoverageReport.from_json(report.to_json()) == report

"""Setup shim.

The environment ships an older setuptools without the ``wheel`` package, so
PEP 517 editable installs (``pip install -e .``) cannot build a wheel.  This
file enables the legacy ``setup.py develop`` code path; all real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
